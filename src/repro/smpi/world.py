"""The MPI world: process registry, transport, spawn, merge.

:class:`MpiWorld` owns every simulated MPI process (endpoint), implements
the message transport on top of the cluster's flow network, and provides
the collective world-level operations that need global knowledge —
``Comm_spawn`` and ``Intercomm_merge``.

User code never touches this directly; it receives a
:class:`~repro.smpi.context.RankCtx` and yields from its methods.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

from ..cluster.fabrics import FabricSpec
from ..cluster.machine import Machine
from ..simulate.core import SimProcess, Simulator
from ..simulate.events import SimEvent
from .communicator import Communicator
from .endpoint import Endpoint, Message
from .spawn import SpawnModel

__all__ = ["MpiWorld", "LaunchResult", "run_spmd"]


@dataclass
class LaunchResult:
    """Handles of one launched process group."""

    comm: Communicator
    procs: list[SimProcess]
    contexts: list  # list[RankCtx]


class _PendingOp:
    """A world-level collective op (spawn or merge) that all participants
    must reach before any can leave."""

    def __init__(self, sim: Simulator, expected: int, name: str):
        self.expected = expected
        self.arrived = 0
        self.event: SimEvent = sim.event(name=name)
        self.result: Any = None

    def arrive(self) -> bool:
        """Returns True for the last arrival (who performs the op)."""
        self.arrived += 1
        if self.arrived > self.expected:
            raise RuntimeError(f"{self.event.name}: more arrivals than participants")
        return self.arrived == self.expected


class MpiWorld:
    """Registry + transport for one simulated MPI universe."""

    def __init__(
        self,
        machine: Machine,
        spawn_model: Optional[SpawnModel] = None,
    ):
        self.machine = machine
        self.sim: Simulator = machine.sim
        self.spawn_model = spawn_model or SpawnModel()
        self.endpoints: dict[int, Endpoint] = {}
        self._gids = itertools.count()
        self._ctx_ids = itertools.count(1)
        self._chan_seq: dict[tuple[int, int], int] = {}
        self._ops: dict[str, _PendingOp] = {}
        #: gid -> slot, kept so reconfiguration layers can reason about
        #: placement (e.g. which ranks share nodes).
        self.slot_of: dict[int, int] = {}
        #: traffic accounting by label prefix, for experiment reports.
        self.bytes_by_label: dict[str, float] = {}
        #: cooperative observability hook: a MetricsRegistry set by
        #: :class:`repro.obs.MetricsProbe` while attached; ``None`` means
        #: every instrumented layer pays one pointer comparison and no more.
        self.metrics = None

    # ------------------------------------------------------------------ launch
    def launch(
        self,
        func: Callable[..., Any],
        slots: Sequence[int],
        args: tuple = (),
        name_prefix: str = "rank",
        parent_intercomm_info: Optional[tuple[int, Sequence[int]]] = None,
    ) -> LaunchResult:
        """Create a process group running ``func(ctx, *args)`` on ``slots``.

        ``parent_intercomm_info`` — ``(inter_ctx_id, parent_gids)`` — is used
        by ``comm_spawn`` to hand the children their side of the parent
        inter-communicator.
        """
        from .context import RankCtx

        slots = list(slots)
        if not slots:
            raise ValueError("launch needs at least one slot")
        gids = [next(self._gids) for _ in slots]
        ctx_id = next(self._ctx_ids)
        comm = Communicator(ctx_id, gids, name=f"{name_prefix}-world{ctx_id}")
        parent = None
        if parent_intercomm_info is not None:
            inter_ctx_id, parent_gids = parent_intercomm_info
            parent = Communicator(
                inter_ctx_id,
                gids,
                remote_group=tuple(parent_gids),
                name=f"spawn{inter_ctx_id}.child",
            )
        contexts = []
        procs = []
        for rank, (gid, slot) in enumerate(zip(gids, slots)):
            node = self.machine.node_for_slot(slot)
            ep = Endpoint(self, gid, node)
            self.endpoints[gid] = ep
            self.slot_of[gid] = slot
            ctx = RankCtx(self, gid=gid, slot=slot, comm_world=comm, parent=parent)
            contexts.append(ctx)
        for rank, ctx in enumerate(contexts):
            gen = func(ctx, *args)
            proc = self.sim.spawn(gen, name=f"{name_prefix}{rank}.g{gids[rank]}")
            proc.context["node"] = ctx.node
            ctx.proc = proc
            procs.append(proc)
        return LaunchResult(comm=comm, procs=procs, contexts=contexts)

    # --------------------------------------------------------------- transport
    def next_chan_seq(self, src_gid: int, dst_gid: int) -> int:
        key = (src_gid, dst_gid)
        seq = self._chan_seq.get(key, 0)
        self._chan_seq[key] = seq + 1
        return seq

    def channel_spec(self, src_gid: int, dst_gid: int) -> FabricSpec:
        """Which fabric's parameters govern a (src,dst) message."""
        src_node = self.endpoints[src_gid].node
        dst_node = self.endpoints[dst_gid].node
        if src_node.node_id == dst_node.node_id:
            return self.machine.memory_channel
        return self.machine.fabric

    def inject(self, msg: Message, label: str = "") -> None:
        """Start a message: choose eager vs rendezvous and kick it off."""
        src_ep = self.endpoints[msg.src_gid]
        dst_ep = self.endpoints[msg.dst_gid]
        spec = self.channel_spec(msg.src_gid, msg.dst_gid)
        if label:
            self.bytes_by_label[label] = self.bytes_by_label.get(label, 0.0) + msg.nbytes
        m = self.metrics
        if m is not None:
            proto = "eager" if msg.nbytes <= spec.eager_threshold else "rndv"
            m.counter("smpi.messages", comm=msg.ctx_id, protocol=proto).inc()
            m.counter("smpi.bytes", comm=msg.ctx_id, protocol=proto).inc(msg.nbytes)
            m.histogram("smpi.message_nbytes").observe(msg.nbytes)
        if msg.nbytes <= spec.eager_threshold:
            msg.protocol = "eager"
            # Buffered semantics: local completion at injection.
            msg.send_req._complete(None)
            ev = self.machine.transfer(
                src_ep.node, dst_ep.node, msg.nbytes, label=f"eager:{msg.msg_id}"
            )
            ev.add_callback(
                lambda _ev: self._after_copy(msg, spec, lambda: dst_ep.deliver_eager(msg))
            )
        else:
            msg.protocol = "rndv"
            ev = self.machine.transfer(
                src_ep.node, dst_ep.node, 0, label=f"rts:{msg.msg_id}"
            )
            ev.add_callback(lambda _ev: dst_ep.rts_arrived(msg))

    def _after_copy(self, msg: Message, spec: FabricSpec, deliver) -> None:
        """Charge the receiver's CPU for the payload touch-copy, then
        deliver.  On CPU-bound transports (Ethernet/TCP) an oversubscribed
        receiving node therefore also slows incoming traffic; RDMA fabrics
        set a copy rate high enough to make this negligible."""
        if spec.copy_rate <= 0 or msg.nbytes <= 0:
            deliver()
            return
        dst_node = self.endpoints[msg.dst_gid].node
        dst_node.submit(msg.nbytes / spec.copy_rate, deliver,
                        label=f"rxcopy:{msg.msg_id}")

    def _send_cts(self, msg: Message) -> None:
        src_ep = self.endpoints[msg.src_gid]
        dst_ep = self.endpoints[msg.dst_gid]
        ev = self.machine.transfer(
            dst_ep.node, src_ep.node, 0, label=f"cts:{msg.msg_id}"
        )
        ev.add_callback(lambda _ev: src_ep.cts_arrived(msg))

    def _start_payload(self, msg: Message) -> None:
        src_ep = self.endpoints[msg.src_gid]
        dst_ep = self.endpoints[msg.dst_gid]
        spec = self.channel_spec(msg.src_gid, msg.dst_gid)
        ev = self.machine.transfer(
            src_ep.node, dst_ep.node, msg.nbytes, label=f"data:{msg.msg_id}"
        )
        ev.add_callback(
            lambda _ev: self._after_copy(msg, spec, lambda: dst_ep.payload_arrived(msg))
        )

    # ------------------------------------------------------------- world ops
    def pending_op(self, key: str, expected: int) -> _PendingOp:
        """Fetch-or-create the rendezvous record of a world-level collective."""
        op = self._ops.get(key)
        if op is None:
            op = _PendingOp(self.sim, expected, name=key)
            self._ops[key] = op
        elif op.expected != expected:
            raise RuntimeError(
                f"collective mismatch on {key}: {op.expected} vs {expected} participants"
            )
        return op

    def finish_op(self, key: str) -> None:
        self._ops.pop(key, None)

    def make_intercomm_pair(
        self,
        local_gids: Sequence[int],
        remote_gids: Sequence[int],
        name: str,
    ) -> tuple[Communicator, Communicator]:
        """Two views (A->B, B->A) of a fresh inter-communicator."""
        ctx_id = next(self._ctx_ids)
        a = Communicator(ctx_id, local_gids, remote_group=remote_gids, name=f"{name}.local")
        b = Communicator(ctx_id, remote_gids, remote_group=local_gids, name=f"{name}.remote")
        return a, b

    def merged_comm(self, inter: Communicator, low_side_local: bool) -> Communicator:
        """The intra-communicator produced by Intercomm_merge.

        ``low_side_local``: whether the *local* group of ``inter`` takes the
        low ranks.  In the Merge method, sources call with ``high=False`` so
        they keep ranks ``0..NS-1`` and the spawned processes follow.
        """
        ctx_id = next(self._ctx_ids)
        if low_side_local:
            gids = list(inter.group) + list(inter.remote_group)
        else:
            gids = list(inter.remote_group) + list(inter.group)
        return Communicator(ctx_id, gids, name=f"merge{ctx_id}")

    # ---------------------------------------------------------------- helpers
    def nodes_of_slots(self, slots: Iterable[int]) -> int:
        return len({self.machine.node_for_slot(s).node_id for s in slots})


def run_spmd(
    func: Callable[..., Any],
    n: int,
    machine: Optional[Machine] = None,
    *,
    n_nodes: int = 2,
    cores_per_node: int = 2,
    fabric: Optional[FabricSpec] = None,
    spawn_model: Optional[SpawnModel] = None,
    args: tuple = (),
    seed: int = 0,
) -> tuple[list[Any], Simulator]:
    """Convenience: run ``func`` as an ``n``-rank SPMD job to completion.

    Returns ``(per-rank results, simulator)``; ``sim.now`` is the makespan.
    Used pervasively by tests and examples.
    """
    from ..cluster.fabrics import ETHERNET_10G

    if machine is None:
        sim = Simulator()
        machine = Machine(
            sim, n_nodes, cores_per_node, fabric or ETHERNET_10G, seed=seed
        )
    world = MpiWorld(machine, spawn_model=spawn_model)
    res = world.launch(func, slots=range(n), args=args)
    machine.sim.run()
    return [p.result for p in res.procs], machine.sim
