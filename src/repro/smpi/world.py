"""The MPI world: process registry, transport, spawn, merge.

:class:`MpiWorld` owns every simulated MPI process (endpoint), implements
the message transport on top of the cluster's flow network, and provides
the collective world-level operations that need global knowledge —
``Comm_spawn`` and ``Intercomm_merge``.

User code never touches this directly; it receives a
:class:`~repro.smpi.context.RankCtx` and yields from its methods.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

from ..cluster.fabrics import FabricSpec
from ..cluster.machine import Machine
from ..simulate.core import SimProcess, Simulator
from ..simulate.events import SimEvent
from .communicator import Communicator
from .endpoint import Endpoint, Message
from .errors import CommFailedError, SpawnFailedError
from .spawn import SpawnModel

__all__ = ["MpiWorld", "LaunchResult", "run_spmd"]


@dataclass
class LaunchResult:
    """Handles of one launched process group."""

    comm: Communicator
    procs: list[SimProcess]
    contexts: list  # list[RankCtx]


class _PendingOp:
    """A world-level collective op (spawn or merge) that all participants
    must reach before any can leave."""

    def __init__(self, sim: Simulator, expected: int, name: str):
        self.expected = expected
        self.arrived = 0
        self.event: SimEvent = sim.event(name=name)
        self.result: Any = None
        #: gids expected to arrive — lets :meth:`MpiWorld.mark_ranks_dead`
        #: fail the op when a participant dies before reaching it.
        self.participants: set[int] = set()

    def arrive(self) -> bool:
        """Returns True for the last arrival (who performs the op)."""
        self.arrived += 1
        if self.arrived > self.expected:
            raise RuntimeError(f"{self.event.name}: more arrivals than participants")
        return self.arrived == self.expected


class MpiWorld:
    """Registry + transport for one simulated MPI universe."""

    def __init__(
        self,
        machine: Machine,
        spawn_model: Optional[SpawnModel] = None,
    ):
        self.machine = machine
        self.sim: Simulator = machine.sim
        self.spawn_model = spawn_model or SpawnModel()
        self.endpoints: dict[int, Endpoint] = {}
        self._gids = itertools.count()
        self._ctx_ids = itertools.count(1)
        #: per-world RMA window ids (metric labels depend on them, so they
        #: must not leak process history — see smpi.rma.Window).
        self._win_ids = itertools.count()
        self._chan_seq: dict[tuple[int, int], int] = {}
        self._ops: dict[str, _PendingOp] = {}
        #: gid -> slot, kept so reconfiguration layers can reason about
        #: placement (e.g. which ranks share nodes).
        self.slot_of: dict[int, int] = {}
        #: traffic accounting by label prefix, for experiment reports.
        self.bytes_by_label: dict[str, float] = {}
        #: cooperative observability hook: a MetricsRegistry set by
        #: :class:`repro.obs.MetricsProbe` while attached; ``None`` means
        #: every instrumented layer pays one pointer comparison and no more.
        self._metrics = None
        #: cooperative correctness hook: a
        #: :class:`repro.sanitize.Sanitizer` while attached, else ``None``.
        #: The smpi/redistribution layers report sends, receives, puts,
        #: blocking waits and finalize through it at pointer-comparison
        #: cost; detached runs are byte-identical.
        self._sanitizer = None
        #: cached "anything attached?" boolean, recomputed by the
        #: ``metrics``/``sanitizer`` property setters on attach/detach.
        #: Hot paths (inject, isend, progress ticks) test this one flag and
        #: skip both probe attribute lookups entirely on detached runs.
        self.observed = False
        #: gids of ranks known dead (node crash, kill, terminate_ranks).
        self.dead_gids: set[int] = set()
        #: every message injected and not yet delivered/retired, keyed by
        #: msg_id; scanned by :meth:`mark_ranks_dead` to fail in-flight
        #: traffic touching a dead rank.
        self._inflight: dict[int, Message] = {}
        #: attempt indices (0-based, in ``comm_spawn`` issue order) whose
        #: launch the fault schedule forces to fail.
        self.fail_spawns: set[int] = set()
        self._spawn_attempts: int = 0
        #: cooperative fault-injection hook: a
        #: :class:`repro.faults.FaultInjector` while attached, else ``None``.
        #: Layers with fault-relevant milestones (e.g. the redistribution
        #: session start) notify through it at pointer-comparison cost.
        self.fault_injector = None
        #: ctx_ids of communicators abandoned by a recovery policy; their
        #: leftover traffic is excused at endpoint close.
        self.aborted_ctxs: set[int] = set()

    # ----------------------------------------------------------------- probes
    @property
    def metrics(self):
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry
        self.observed = registry is not None or self._sanitizer is not None

    @property
    def sanitizer(self):
        return self._sanitizer

    @sanitizer.setter
    def sanitizer(self, san) -> None:
        self._sanitizer = san
        self.observed = san is not None or self._metrics is not None

    # ------------------------------------------------------------------ launch
    def launch(
        self,
        func: Callable[..., Any],
        slots: Sequence[int],
        args: tuple = (),
        name_prefix: str = "rank",
        parent_intercomm_info: Optional[tuple[int, Sequence[int]]] = None,
    ) -> LaunchResult:
        """Create a process group running ``func(ctx, *args)`` on ``slots``.

        ``parent_intercomm_info`` — ``(inter_ctx_id, parent_gids)`` — is used
        by ``comm_spawn`` to hand the children their side of the parent
        inter-communicator.
        """
        from .context import RankCtx

        slots = list(slots)
        if not slots:
            raise ValueError("launch needs at least one slot")
        gids = [next(self._gids) for _ in slots]
        ctx_id = next(self._ctx_ids)
        comm = Communicator(ctx_id, gids, name=f"{name_prefix}-world{ctx_id}")
        parent = None
        if parent_intercomm_info is not None:
            inter_ctx_id, parent_gids = parent_intercomm_info
            parent = Communicator(
                inter_ctx_id,
                gids,
                remote_group=tuple(parent_gids),
                name=f"spawn{inter_ctx_id}.child",
            )
        contexts = []
        procs = []
        for rank, (gid, slot) in enumerate(zip(gids, slots)):
            node = self.machine.node_for_slot(slot)
            ep = Endpoint(self, gid, node)
            self.endpoints[gid] = ep
            self.slot_of[gid] = slot
            ctx = RankCtx(self, gid=gid, slot=slot, comm_world=comm, parent=parent)
            contexts.append(ctx)
        for rank, ctx in enumerate(contexts):
            gen = func(ctx, *args)
            proc = self.sim.spawn(gen, name=f"{name_prefix}{rank}.g{gids[rank]}")
            proc.context["node"] = ctx.node
            proc.context["rank_gid"] = gids[rank]
            ctx.proc = proc
            procs.append(proc)
            self._watch_rank(proc, gids[rank])
        return LaunchResult(comm=comm, procs=procs, contexts=contexts)

    def _watch_rank(self, proc: SimProcess, gid: int) -> None:
        """Propagate an external kill of a rank's main process into the
        failure layer: peers see :class:`CommFailedError` instead of
        deadlocking on traffic that can never complete.  Normal completion
        (``done``/``failed``) is *not* a communication failure — finalize
        semantics already cover it."""

        def on_done(_ev):
            if proc.state == SimProcess._KILLED:
                self.mark_ranks_dead([gid], reason=f"rank gid={gid} was killed")

        proc.done_event.add_callback(on_done)

    # --------------------------------------------------------------- transport
    def next_chan_seq(self, src_gid: int, dst_gid: int) -> int:
        key = (src_gid, dst_gid)
        seq = self._chan_seq.get(key, 0)
        self._chan_seq[key] = seq + 1
        return seq

    def channel_spec(self, src_gid: int, dst_gid: int) -> FabricSpec:
        """Which fabric's parameters govern a (src,dst) message."""
        src_node = self.endpoints[src_gid].node
        dst_node = self.endpoints[dst_gid].node
        if src_node.node_id == dst_node.node_id:
            return self.machine.memory_channel
        return self.machine.fabric

    def inject(self, msg: Message, label: str = "") -> None:
        """Start a message: choose eager vs rendezvous and kick it off."""
        if msg.dst_gid in self.dead_gids:
            msg.send_req._fail(
                CommFailedError(
                    f"send to dead rank gid={msg.dst_gid}", dead_gids=[msg.dst_gid]
                )
            )
            return
        endpoints = self.endpoints
        src_node = endpoints[msg.src_gid].node
        dst_node = endpoints[msg.dst_gid].node
        machine = self.machine
        if src_node.node_id == dst_node.node_id:
            spec = machine.memory_channel
        else:
            spec = machine.fabric
        if label:
            self.bytes_by_label[label] = self.bytes_by_label.get(label, 0.0) + msg.nbytes
        eager = msg.nbytes <= spec.eager_threshold
        if self.observed:
            m = self._metrics
            if m is not None:
                proto = "eager" if eager else "rndv"
                m.counter("smpi.messages", comm=msg.ctx_id, protocol=proto).inc()
                m.counter("smpi.bytes", comm=msg.ctx_id, protocol=proto).inc(msg.nbytes)
                m.histogram("smpi.message_nbytes").observe(msg.nbytes)
        if eager:
            # Eager fast lane: buffered semantics complete the send locally
            # right now, so the in-flight table — which only exists to fail
            # *pending* requests when a peer dies or a communicator aborts —
            # has nothing left to fail.  Skipping registration saves two dict
            # operations per message and shrinks the failure-layer scans;
            # staleness on arrival is decided by ``dead_gids`` alone (the
            # same verdict the table scan used to reach).
            msg.protocol = "eager"
            msg.send_req._complete(None)
            ev = machine.transfer(
                src_node, dst_node, msg.nbytes, label=f"eager:{msg.msg_id}"
            )
            ev.add_callback(lambda _ev: self._eager_arrived(msg, spec))
        else:
            msg.protocol = "rndv"
            self._inflight[msg.msg_id] = msg
            ev = machine.transfer(
                src_node, dst_node, 0, label=f"rts:{msg.msg_id}"
            )
            ev.add_callback(lambda _ev: self._rts_arrived(msg))

    def inject_batch(self, msgs: Sequence[Message], label: str = "") -> None:
        """Start a batch of same-(src, dst) messages in one pass.

        The per-message wire events are untouched — each message still gets
        its own flow through the cluster network, because merging flows
        would change the max-min bandwidth shares and break byte-identity
        with the scalar lane.  What the batch hoists is the Python
        bookkeeping that :meth:`inject` pays per message: one dead-peer
        check, one endpoint/node/fabric lookup, one label accounting update,
        and one metrics counter flush per (comm, protocol) class for the
        whole batch (counter totals are identical to per-message
        increments; the size histogram still observes each message so its
        shape is unchanged).
        """
        if not msgs:
            return
        first = msgs[0]
        dst_gid = first.dst_gid
        if dst_gid in self.dead_gids:
            for msg in msgs:
                msg.send_req._fail(
                    CommFailedError(
                        f"send to dead rank gid={dst_gid}", dead_gids=[dst_gid]
                    )
                )
            return
        endpoints = self.endpoints
        src_node = endpoints[first.src_gid].node
        dst_node = endpoints[dst_gid].node
        machine = self.machine
        if src_node.node_id == dst_node.node_id:
            spec = machine.memory_channel
        else:
            spec = machine.fabric
        if label:
            self.bytes_by_label[label] = self.bytes_by_label.get(
                label, 0.0
            ) + sum(msg.nbytes for msg in msgs)
        threshold = spec.eager_threshold
        if self.observed:
            m = self._metrics
            if m is not None:
                totals: dict[tuple[int, str], list] = {}
                hist = m.histogram("smpi.message_nbytes")
                for msg in msgs:
                    proto = "eager" if msg.nbytes <= threshold else "rndv"
                    acc = totals.get((msg.ctx_id, proto))
                    if acc is None:
                        totals[(msg.ctx_id, proto)] = [1, msg.nbytes]
                    else:
                        acc[0] += 1
                        acc[1] += msg.nbytes
                    hist.observe(msg.nbytes)
                for (ctx_id, proto), (count, nbytes) in totals.items():
                    m.counter(
                        "smpi.messages", comm=ctx_id, protocol=proto
                    ).inc(count)
                    m.counter(
                        "smpi.bytes", comm=ctx_id, protocol=proto
                    ).inc(nbytes)
        transfer = machine.transfer
        if (
            len(msgs) > 1
            and spec.copy_rate <= 0
            and msgs[0].nbytes <= threshold
            and all(m.nbytes == msgs[0].nbytes for m in msgs)
        ):
            # Equal-size eager flows launched together over one route get
            # identical max-min shares at every instant, so they land at the
            # same time no matter what else the network carries.  Hand the
            # whole run to the endpoint when the last flow completes: one
            # dead-receiver verdict and one FIFO-gate update instead of N.
            # (With copy_rate > 0 the receiver-side touch-copies stagger the
            # arrivals through the CPU model, so those fall through to the
            # per-message path below.)
            n = len(msgs)
            landed: list[Message] = []

            def _flow_landed(m: Message) -> None:
                landed.append(m)
                if len(landed) == n:
                    if m.dst_gid in self.dead_gids:
                        return  # receiver died; buffered data evaporates
                    self.endpoints[m.dst_gid].deliver_eager_batch(landed)

            for msg in msgs:
                msg.protocol = "eager"
                msg.send_req._complete(None)
                ev = transfer(
                    src_node, dst_node, msg.nbytes, label=f"eager:{msg.msg_id}"
                )
                ev.add_callback(lambda _ev, m=msg: _flow_landed(m))
            return
        for msg in msgs:
            if msg.nbytes <= threshold:
                msg.protocol = "eager"
                msg.send_req._complete(None)
                ev = transfer(
                    src_node, dst_node, msg.nbytes, label=f"eager:{msg.msg_id}"
                )
                ev.add_callback(
                    lambda _ev, m=msg: self._eager_arrived(m, spec)
                )
            else:
                msg.protocol = "rndv"
                self._inflight[msg.msg_id] = msg
                ev = transfer(src_node, dst_node, 0, label=f"rts:{msg.msg_id}")
                ev.add_callback(lambda _ev, m=msg: self._rts_arrived(m))

    def _eager_arrived(self, msg: Message, spec: FabricSpec) -> None:
        if msg.dst_gid in self.dead_gids:
            return  # receiver died; buffered data evaporates with it
        dst_ep = self.endpoints[msg.dst_gid]
        self._after_copy(msg, spec, lambda: dst_ep.deliver_eager(msg))

    def _rts_arrived(self, msg: Message) -> None:
        if msg.msg_id not in self._inflight:
            return  # retired while in flight (peer died)
        if msg.dst_gid in self.dead_gids:
            self._inflight.pop(msg.msg_id, None)
            msg.send_req._fail(
                CommFailedError(
                    f"receiver rank gid={msg.dst_gid} died before rendezvous",
                    dead_gids=[msg.dst_gid],
                )
            )
            return
        self.endpoints[msg.dst_gid].rts_arrived(msg)

    def _after_copy(self, msg: Message, spec: FabricSpec, deliver) -> None:
        """Charge the receiver's CPU for the payload touch-copy, then
        deliver.  On CPU-bound transports (Ethernet/TCP) an oversubscribed
        receiving node therefore also slows incoming traffic; RDMA fabrics
        set a copy rate high enough to make this negligible."""
        if spec.copy_rate <= 0 or msg.nbytes <= 0:
            deliver()
            return
        dst_node = self.endpoints[msg.dst_gid].node
        dst_node.submit(msg.nbytes / spec.copy_rate, deliver,
                        label=f"rxcopy:{msg.msg_id}")

    def _send_cts(self, msg: Message) -> None:
        src_ep = self.endpoints[msg.src_gid]
        dst_ep = self.endpoints[msg.dst_gid]
        ev = self.machine.transfer(
            dst_ep.node, src_ep.node, 0, label=f"cts:{msg.msg_id}"
        )
        ev.add_callback(lambda _ev: self._cts_arrived(msg))

    def _cts_arrived(self, msg: Message) -> None:
        if msg.msg_id not in self._inflight:
            return  # retired while in flight (peer died)
        if msg.src_gid in self.dead_gids:
            # The sender died before it could stream; the claimed receive can
            # never complete.
            self._inflight.pop(msg.msg_id, None)
            if msg.recv_req is not None:
                msg.recv_req._fail(
                    CommFailedError(
                        f"sender rank gid={msg.src_gid} died before payload",
                        dead_gids=[msg.src_gid],
                    )
                )
            return
        self.endpoints[msg.src_gid].cts_arrived(msg)

    def _start_payload(self, msg: Message) -> None:
        src_ep = self.endpoints[msg.src_gid]
        dst_ep = self.endpoints[msg.dst_gid]
        spec = self.channel_spec(msg.src_gid, msg.dst_gid)
        ev = self.machine.transfer(
            src_ep.node, dst_ep.node, msg.nbytes, label=f"data:{msg.msg_id}"
        )
        ev.add_callback(lambda _ev: self._payload_arrived(msg, spec))

    def _payload_arrived(self, msg: Message, spec: FabricSpec) -> None:
        if msg.msg_id not in self._inflight:
            return  # retired while in flight (peer died)
        if msg.dst_gid in self.dead_gids:
            self._inflight.pop(msg.msg_id, None)
            msg.send_req._fail(
                CommFailedError(
                    f"receiver rank gid={msg.dst_gid} died mid-payload",
                    dead_gids=[msg.dst_gid],
                )
            )
            return
        # A sender dying *after* the payload fully streamed still counts as a
        # committed delivery — the bytes are on the wire and in the buffer.
        dst_ep = self.endpoints[msg.dst_gid]
        self._after_copy(msg, spec, lambda: dst_ep.payload_arrived(msg))

    # ------------------------------------------------------------- world ops
    def pending_op(
        self, key: str, expected: int, participants: Optional[Iterable[int]] = None
    ) -> _PendingOp:
        """Fetch-or-create the rendezvous record of a world-level collective.

        ``participants`` (gids) lets the failure layer abort the op when a
        participant dies before arriving, instead of the survivors waiting
        forever at the rendezvous.
        """
        op = self._ops.get(key)
        if op is None:
            op = _PendingOp(self.sim, expected, name=key)
            self._ops[key] = op
        elif op.expected != expected:
            raise RuntimeError(
                f"collective mismatch on {key}: {op.expected} vs {expected} participants"
            )
        if participants is not None:
            op.participants.update(participants)
            # A participant may have died *before* the first survivor reached
            # this rendezvous (the op record did not exist yet when
            # mark_ranks_dead swept pending ops) — fail it right here so the
            # survivors raise instead of waiting forever.  The record stays
            # registered: later arrivals must observe the same failed event,
            # not re-create a fresh rendezvous nobody can complete.
            implicated = sorted(g for g in op.participants if g in self.dead_gids)
            if implicated and op.event.pending:
                op.event.fail(
                    CommFailedError(
                        f"collective {key} aborted — participant died "
                        f"before the rendezvous",
                        dead_gids=implicated,
                    )
                )
        return op

    def finish_op(self, key: str) -> None:
        self._ops.pop(key, None)

    def make_intercomm_pair(
        self,
        local_gids: Sequence[int],
        remote_gids: Sequence[int],
        name: str,
    ) -> tuple[Communicator, Communicator]:
        """Two views (A->B, B->A) of a fresh inter-communicator."""
        ctx_id = next(self._ctx_ids)
        a = Communicator(ctx_id, local_gids, remote_group=remote_gids, name=f"{name}.local")
        b = Communicator(ctx_id, remote_gids, remote_group=local_gids, name=f"{name}.remote")
        return a, b

    def merged_comm(self, inter: Communicator, low_side_local: bool) -> Communicator:
        """The intra-communicator produced by Intercomm_merge.

        ``low_side_local``: whether the *local* group of ``inter`` takes the
        low ranks.  In the Merge method, sources call with ``high=False`` so
        they keep ranks ``0..NS-1`` and the spawned processes follow.
        """
        ctx_id = next(self._ctx_ids)
        if low_side_local:
            gids = list(inter.group) + list(inter.remote_group)
        else:
            gids = list(inter.remote_group) + list(inter.group)
        return Communicator(ctx_id, gids, name=f"merge{ctx_id}")

    # ---------------------------------------------------------- failure layer
    def mark_rank_dead(self, gid: int, reason: str = "rank died") -> None:
        self.mark_ranks_dead([gid], reason=reason)

    def mark_ranks_dead(self, gids: Iterable[int], reason: str = "rank died") -> None:
        """Record rank deaths and propagate them to every survivor.

        Outstanding traffic and rendezvous touching a dead rank completes *in
        error* (``CommFailedError``) so blocked peers are woken rather than
        deadlocked:

        * in-flight messages **to** a dead rank fail their send request;
        * claimed rendezvous **from** a dead rank fail the matched receive;
        * eager payloads already committed at injection still deliver
          (buffered semantics — the data left the sender before it died);
        * survivor endpoints fail posted receives that can never match and
          drop announcements/handshakes involving the dead rank;
        * pending world-level collectives (spawn/merge) with a dead
          participant fail for everyone still waiting at the rendezvous.
        """
        new = sorted(g for g in dict.fromkeys(gids) if g not in self.dead_gids)
        if not new:
            return
        self.dead_gids.update(new)
        dead = self.dead_gids
        # 1. in-flight point-to-point traffic
        for msg_id, msg in list(self._inflight.items()):
            src_dead = msg.src_gid in dead
            dst_dead = msg.dst_gid in dead
            if not (src_dead or dst_dead):
                continue
            if dst_dead:
                del self._inflight[msg_id]
                msg.send_req._fail(
                    CommFailedError(
                        f"{reason}: message to dead rank gid={msg.dst_gid}",
                        dead_gids=[msg.dst_gid],
                    )
                )
            elif msg.protocol != "eager":
                # Rendezvous from a dead sender can never stream.
                del self._inflight[msg_id]
                if msg.recv_req is not None:
                    msg.recv_req._fail(
                        CommFailedError(
                            f"{reason}: sender rank gid={msg.src_gid} died",
                            dead_gids=[msg.src_gid],
                        )
                    )
            # eager from a dead sender: keep — the payload was committed
            # (buffered) at injection and still delivers.
        # 2. survivor endpoints
        for gid, ep in self.endpoints.items():
            if gid not in dead:
                ep.on_peer_dead(dead, reason)
        # 3. pending world-level collectives
        for key, op in list(self._ops.items()):
            implicated = sorted(op.participants & dead)
            if implicated and op.event.pending:
                del self._ops[key]
                op.event.fail(
                    CommFailedError(
                        f"{reason}: collective {key} aborted — participant died",
                        dead_gids=implicated,
                    )
                )

    def terminate_ranks(self, gids: Iterable[int], reason: str = "terminated") -> None:
        """Kill the main processes of ``gids`` *synchronously* and mark them
        dead.  Used by recovery policies to revoke a half-spawned or
        abandoned group (the simulation analogue of ``MPIX_Comm_revoke`` plus
        ``MPI_Abort`` on the doomed side)."""
        gids = list(gids)
        for gid in gids:
            ep = self.endpoints.get(gid)
            if ep is None:
                continue
            for proc in list(self.sim._processes):
                if proc.alive and proc.context.get("rank_gid") == gid:
                    self.sim.kill_now(proc, reason=reason)
        self.mark_ranks_dead(gids, reason=reason)

    def abort_comm(self, comm: Communicator) -> None:
        """Abandon ``comm`` mid-session (a recovery policy gave up on it).

        Leftover traffic on the context is excused at endpoint close, and —
        crucially — every *outstanding* operation pinned to it completes in
        error right now: a member still blocked inside one of the aborted
        communicator's collectives would otherwise wait forever for a peer
        that already fell out of the session.  Idempotent; every rank of a
        recovering group may call this."""
        ctx = comm.ctx_id
        if ctx in self.aborted_ctxs:
            return
        self.aborted_ctxs.add(ctx)
        reason = f"communicator {comm.name} aborted by recovery"
        # In-flight messages keep flowing — their sequence numbers must pass
        # the receivers' FIFO gates (the dispatch layer drops them) — but
        # their requests complete in error immediately.
        for msg_id in sorted(
            m_id for m_id, m in self._inflight.items() if m.ctx_id == ctx
        ):
            msg = self._inflight[msg_id]
            msg.send_req._fail(CommFailedError(reason))
            if msg.recv_req is not None:
                msg.recv_req._fail(CommFailedError(reason))
        members = set(comm.group) | set(comm.remote_group or ())
        for gid in sorted(members):
            if gid in self.dead_gids:
                continue
            ep = self.endpoints.get(gid)
            if ep is not None:
                ep.on_comm_aborted(ctx, reason)

    def retire_msg(self, msg: Message) -> None:
        """A message reached its final receive; drop it from the in-flight
        table (called by the endpoint on delivery)."""
        self._inflight.pop(msg.msg_id, None)

    def spawn_failure(self, slots: Sequence[int]) -> Optional[SpawnFailedError]:
        """Decide whether this ``comm_spawn`` launch attempt fails.

        Consumes one attempt index (issue order — deterministic) against the
        fault schedule's ``fail_spawns`` set, and rejects placements landing
        on failed nodes regardless of the schedule.
        """
        attempt = self._spawn_attempts
        self._spawn_attempts += 1
        if attempt in self.fail_spawns:
            return SpawnFailedError(
                f"spawn attempt #{attempt} failed (injected spawn fault)"
            )
        bad = sorted(
            {
                self.machine.node_for_slot(s).node_id
                for s in slots
                if getattr(self.machine.node_for_slot(s), "failed", False)
            }
        )
        if bad:
            return SpawnFailedError(
                f"spawn attempt #{attempt} targets failed node(s) {bad}"
            )
        return None

    # ---------------------------------------------------------------- helpers
    def nodes_of_slots(self, slots: Iterable[int]) -> int:
        return len({self.machine.node_for_slot(s).node_id for s in slots})


def run_spmd(
    func: Callable[..., Any],
    n: int,
    machine: Optional[Machine] = None,
    *,
    n_nodes: int = 2,
    cores_per_node: int = 2,
    fabric: Optional[FabricSpec] = None,
    spawn_model: Optional[SpawnModel] = None,
    args: tuple = (),
    seed: int = 0,
) -> tuple[list[Any], Simulator]:
    """Convenience: run ``func`` as an ``n``-rank SPMD job to completion.

    Returns ``(per-rank results, simulator)``; ``sim.now`` is the makespan.
    Used pervasively by tests and examples.
    """
    from ..cluster.fabrics import ETHERNET_10G

    if machine is None:
        sim = Simulator()
        machine = Machine(
            sim, n_nodes, cores_per_node, fabric or ETHERNET_10G, seed=seed
        )
    world = MpiWorld(machine, spawn_model=spawn_model)
    res = world.launch(func, slots=range(n), args=args)
    machine.sim.run()
    return [p.result for p in res.procs], machine.sim
