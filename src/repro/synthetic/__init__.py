"""The synthetic application of [15, 17], reimplemented on simulated MPI.

Emulates configurable iterative MPI applications (stage sequences, byte
counts, reconfiguration schedules) and is the workload of every figure in
the paper's evaluation.  See :func:`cg_emulation_config` for the §4.2 CG
preset.
"""

from .application import SyntheticApp, launch_synthetic
from .configfile import SyntheticConfig
from .monitoring import read_stats_json, stats_to_dict, write_stats_json
from .presets import SCALES, ScalePreset, cg_emulation_config
from .stages import STAGE_KINDS, StageSpec, run_stage

__all__ = [
    "SyntheticApp",
    "launch_synthetic",
    "SyntheticConfig",
    "StageSpec",
    "STAGE_KINDS",
    "run_stage",
    "SCALES",
    "ScalePreset",
    "cg_emulation_config",
    "stats_to_dict",
    "write_stats_json",
    "read_stats_json",
]
