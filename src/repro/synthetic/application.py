"""The synthetic application (reimplementation of the PDP'23 tool [17]).

Five modules, as in Figure 1 of the paper:

* **Initialization** — :func:`launch_synthetic` reads the configuration and
  starts the first process group (the config travels to spawned groups via
  the manager's child plumbing);
* **Application emulation** — :meth:`SyntheticApp.iterate` runs the
  configured stage sequence each iteration;
* **Malleability** — delegated to :mod:`repro.malleability` (Stages 1-4);
* **Monitoring** — :class:`~repro.malleability.stats.RunStats`, exported by
  :mod:`repro.synthetic.monitoring`;
* **Completion** — process finalisation inside the manager plus the
  monitoring dump.
"""

from __future__ import annotations

from typing import Optional

from ..malleability.config import ReconfigConfig
from ..malleability.manager import run_malleable
from ..malleability.stats import RunStats
from ..redistribution.plan import RedistributionPlan
from ..redistribution.stores import FieldSpec
from .configfile import SyntheticConfig
from .stages import run_stage

__all__ = ["SyntheticApp", "launch_synthetic"]


class SyntheticApp:
    """A :class:`~repro.malleability.manager.MalleableApp` that emulates an
    iterative MPI code from a :class:`SyntheticConfig`.

    Data is purely virtual (byte-accounted, never allocated), split into a
    constant and a variable field with the configured sizes — e.g. the CG
    preset's 96.6 % / 3.4 %.
    """

    def __init__(self, config: SyntheticConfig):
        self.config = config
        self.n_iterations = config.iterations
        self.n_rows = config.n_rows
        self.specs = (
            FieldSpec(
                "const_data", "virtual", constant=True,
                bytes_per_row=config.constant_bytes / config.n_rows,
            ),
            FieldSpec(
                "var_data", "virtual", constant=False,
                bytes_per_row=config.variable_bytes / config.n_rows,
            ),
        )

    def initial_data(self, lo: int, hi: int) -> dict:
        return {}  # virtual fields are filled by fill_virtual=True

    def iterate(self, mpi, comm, dataset, iteration):
        for spec in self.config.stages:
            yield from run_stage(mpi, comm, spec, iteration, self.config.fidelity)

    def on_handoff(self, mpi, dataset) -> None:
        # Completeness check: the reconfiguration must have delivered every
        # virtual row to this rank (cheap, and catches plan/session bugs in
        # every sweep run, not just in unit tests).
        for store in dataset.stores.values():
            if not store.complete:
                raise RuntimeError(
                    f"rank gid={mpi.gid}: field {store.spec.name} incomplete "
                    f"after reconfiguration"
                )


def launch_synthetic(
    world,
    config: SyntheticConfig,
    reconfig_config: ReconfigConfig,
    n_initial: int,
    stats: Optional[RunStats] = None,
    plan_factory=RedistributionPlan.block,
) -> RunStats:
    """Initialization module: start the first group on slots ``0..n-1``.

    Returns the shared :class:`RunStats`; run ``world.sim.run()`` to execute.
    """
    stats = stats if stats is not None else RunStats()
    app = SyntheticApp(config)
    world.launch(
        run_malleable,
        slots=range(n_initial),
        args=(app, reconfig_config, list(config.reconfigurations), stats, plan_factory),
    )
    return stats
