"""Configuration files for the synthetic application.

The paper's tool is "parameterized through a configuration file, which
includes the main features of the computational behaviour and the
communication pattern of the emulated application, as well as the
description of the reconfiguration stages" (§4.1).  We use TOML::

    [general]
    iterations = 1000
    n_rows = 4147110
    fidelity = "sketch"

    [data]
    constant_bytes = 3.813e9
    variable_bytes = 0.134e9

    [[stages]]
    kind = "compute"
    work = 9.6

    [[stages]]
    kind = "allreduce"
    nbytes = 8

    [[reconfigurations]]
    at_iteration = 500
    n_targets = 120

Parsed with the stdlib ``tomllib``; :meth:`SyntheticConfig.to_toml` writes
the same format back (round-trip tested).
"""

from __future__ import annotations

import io
import tomllib
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from ..malleability.rms import ReconfigRequest
from .stages import StageSpec

__all__ = ["SyntheticConfig"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Full description of one synthetic-application run."""

    iterations: int
    n_rows: int
    constant_bytes: float
    variable_bytes: float
    stages: tuple[StageSpec, ...]
    reconfigurations: tuple[ReconfigRequest, ...] = ()
    fidelity: str = "sketch"

    def __post_init__(self):
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.n_rows < 1:
            raise ValueError("n_rows must be >= 1")
        if self.constant_bytes < 0 or self.variable_bytes < 0:
            raise ValueError("data byte counts must be >= 0")
        if not self.stages:
            raise ValueError("a synthetic run needs at least one stage")
        if self.fidelity not in ("full", "sketch"):
            raise ValueError(f"unknown fidelity {self.fidelity!r}")
        for req in self.reconfigurations:
            if req.at_iteration >= self.iterations:
                raise ValueError(
                    f"reconfiguration at iteration {req.at_iteration} is beyond "
                    f"the {self.iterations}-iteration run"
                )

    # -------------------------------------------------------------- metrics
    @property
    def total_bytes(self) -> float:
        """Bytes redistributed at a reconfiguration (paper: 3.947 GB)."""
        return self.constant_bytes + self.variable_bytes

    @property
    def async_fraction(self) -> float:
        """Fraction redistributable asynchronously (paper: 96.6 %)."""
        if self.total_bytes == 0:
            return 0.0
        return self.constant_bytes / self.total_bytes

    # ----------------------------------------------------------------- TOML
    @classmethod
    def from_toml(cls, source: Union[str, Path]) -> "SyntheticConfig":
        """Parse a config from a TOML string or file path."""
        if isinstance(source, Path) or (
            isinstance(source, str) and "\n" not in source and source.endswith(".toml")
        ):
            data = tomllib.loads(Path(source).read_text())
        else:
            data = tomllib.loads(source)
        return cls.from_dict(data)

    @classmethod
    def from_dict(cls, data: dict) -> "SyntheticConfig":
        try:
            general = data["general"]
            data_section = data["data"]
            stages_raw = data["stages"]
        except KeyError as missing:
            raise ValueError(f"config missing section {missing}") from None
        stages = tuple(
            StageSpec(
                kind=s["kind"],
                work=float(s.get("work", 0.0)),
                nbytes=float(s.get("nbytes", 0.0)),
                scale=s.get("scale", "linear"),
                jitter=float(s.get("jitter", 0.02)),
            )
            for s in stages_raw
        )
        reconfs = tuple(
            ReconfigRequest(int(r["at_iteration"]), int(r["n_targets"]))
            for r in data.get("reconfigurations", [])
        )
        return cls(
            iterations=int(general["iterations"]),
            n_rows=int(general["n_rows"]),
            fidelity=general.get("fidelity", "sketch"),
            constant_bytes=float(data_section["constant_bytes"]),
            variable_bytes=float(data_section["variable_bytes"]),
            stages=stages,
            reconfigurations=reconfs,
        )

    def to_toml(self) -> str:
        out = io.StringIO()
        out.write("[general]\n")
        out.write(f"iterations = {self.iterations}\n")
        out.write(f"n_rows = {self.n_rows}\n")
        out.write(f'fidelity = "{self.fidelity}"\n\n')
        out.write("[data]\n")
        out.write(f"constant_bytes = {self.constant_bytes!r}\n")
        out.write(f"variable_bytes = {self.variable_bytes!r}\n")
        for s in self.stages:
            out.write("\n[[stages]]\n")
            out.write(f'kind = "{s.kind}"\n')
            if s.work:
                out.write(f"work = {s.work!r}\n")
            if s.nbytes:
                out.write(f"nbytes = {s.nbytes!r}\n")
            if s.scale != "linear":
                out.write(f'scale = "{s.scale}"\n')
            if s.jitter != 0.02:
                out.write(f"jitter = {s.jitter!r}\n")
        for r in self.reconfigurations:
            out.write("\n[[reconfigurations]]\n")
            out.write(f"at_iteration = {r.at_iteration}\n")
            out.write(f"n_targets = {r.n_targets}\n")
        return out.getvalue()

    def with_reconfigurations(self, reconfs) -> "SyntheticConfig":
        """Copy with a different reconfiguration schedule (harness sweeps)."""
        from dataclasses import replace

        return replace(self, reconfigurations=tuple(reconfs))
