"""Monitoring/Completion modules: export run telemetry for analysis.

The paper's tool stores per-level timings in intermediate files; here the
shared :class:`~repro.malleability.stats.RunStats` is serialised to plain
dicts / JSON so the harness (and users) can post-process with standard
tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..malleability.stats import ReconfigRecord, RunStats

__all__ = ["stats_to_dict", "write_stats_json", "read_stats_json"]


def _reconfig_to_dict(rec: ReconfigRecord) -> dict:
    out = {
        "n_sources": rec.n_sources,
        "n_targets": rec.n_targets,
        "requested_iteration": rec.requested_iteration,
        "decision_at": rec.decision_at,
        "plan_built_at": rec.plan_built_at,
        "spawn_started_at": rec.spawn_started_at,
        "spawn_finished_at": rec.spawn_finished_at,
        "redist_started_at": rec.redist_started_at,
        "const_data_complete_at": rec.const_data_complete_at,
        "data_complete_at": rec.data_complete_at,
        "commit_finished_at": rec.commit_finished_at,
        "sources_stopped_iteration": rec.sources_stopped_iteration,
        "overlapped_iterations": rec.overlapped_iterations,
        "reconfiguration_time": (
            rec.reconfiguration_time
            if rec.spawn_started_at is not None and rec.data_complete_at is not None
            else None
        ),
    }
    # Per-stage breakdown (the obs layer's ReconfigBreakdown) when the
    # record is complete enough to compute one.
    try:
        out["breakdown"] = rec.breakdown.to_dict()
    except RuntimeError:
        out["breakdown"] = None
    return out


def stats_to_dict(stats: RunStats) -> dict:
    """Flatten a run's telemetry to JSON-serialisable primitives."""
    return {
        "started_at": stats.started_at,
        "finished_at": stats.finished_at,
        "app_time": stats.app_time if stats.finished_at is not None else None,
        "total_iterations": stats.total_iterations(),
        "iterations_by_group": dict(stats.iterations_by_group),
        "reconfigurations": [_reconfig_to_dict(r) for r in stats.reconfigs],
        "iteration_times": stats.iteration_times,
    }


def write_stats_json(stats: RunStats, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(stats_to_dict(stats), indent=2))


def read_stats_json(path: Union[str, Path]) -> dict:
    return json.loads(Path(path).read_text())
