"""Workload presets — most importantly the paper's CG emulation (§4.2).

The emulated parallel CG defines six stages: three intensive compute
stages, two 8-byte ``MPI_Allreduce`` (the dot products) and one
``MPI_Allgatherv`` of N doubles (the SpMV gather).  Data: the Queen_4147
CSR plus vectors, ≈3.947 GB in total, 96.6 % of which (the constant matrix
and rhs) can be redistributed asynchronously.

Scales (DESIGN.md §5): ``paper`` is the full-size configuration (160-core
ladder); ``small``/``tiny`` shrink rows, bytes and iterations
proportionally so sweeps and CI run in seconds while preserving the ratio
of iteration time to reconfiguration time — the quantity that drives the
paper's trade-offs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.matrices import queen4147_stats
from ..smpi.spawn import SpawnModel
from .configfile import SyntheticConfig
from .stages import StageSpec

__all__ = ["ScalePreset", "SCALES", "cg_emulation_config"]


@dataclass(frozen=True)
class ScalePreset:
    """Machine + ladder for one evaluation scale."""

    name: str
    n_nodes: int
    cores_per_node: int
    #: process counts evaluated pairwise (42 pairs at paper scale).
    ladder: tuple[int, ...]
    iterations: int
    reconfigure_at: int
    #: scale factor applied to rows and bytes relative to the paper.
    data_scale: float
    #: statistical repetitions per cell (paper: 5).
    repetitions: int
    #: spawn cost parameters, scaled so the reconfiguration-to-iteration
    #: time ratio stays in the paper's regime (10-80 overlapped iterations).
    spawn_model: SpawnModel

    def pairs(self) -> list[tuple[int, int]]:
        """All ordered (NS, NT) pairs of the ladder (42 at paper scale)."""
        return [(a, b) for a in self.ladder for b in self.ladder if a != b]


SCALES: dict[str, ScalePreset] = {
    "paper": ScalePreset(
        name="paper", n_nodes=8, cores_per_node=20,
        ladder=(2, 10, 20, 40, 80, 120, 160),
        iterations=1000, reconfigure_at=500,
        data_scale=1.0, repetitions=5,
        spawn_model=SpawnModel(),
    ),
    "small": ScalePreset(
        name="small", n_nodes=8, cores_per_node=4,
        ladder=(2, 4, 8, 16, 24, 32),
        iterations=100, reconfigure_at=50,
        data_scale=1.0 / 8.0, repetitions=3,
        spawn_model=SpawnModel(base=0.05, per_process=0.004, per_node=0.02),
    ),
    "tiny": ScalePreset(
        name="tiny", n_nodes=4, cores_per_node=2,
        ladder=(2, 4, 8),
        iterations=30, reconfigure_at=15,
        data_scale=1.0 / 64.0, repetitions=2,
        spawn_model=SpawnModel(base=0.01, per_process=0.002, per_node=0.005),
    ),
}


def cg_emulation_config(scale: str = "small", fidelity: str = "sketch") -> SyntheticConfig:
    """The §4.2 CG emulation at the requested scale.

    Compute work is calibrated so a full-ladder group iterates in tens of
    milliseconds — which, against the spawn + 3.9 GB redistribution cost,
    lands the overlapped-iteration counts in the ranges the paper reports
    (10-80 on Ethernet, 5-10 on Infiniband).
    """
    preset = SCALES[scale]
    q = queen4147_stats()
    n_rows = max(1000, int(q.n_rows * preset.data_scale))
    # Constant data: CSR + rhs; variable: the CG work vectors (x, r, p).
    const_bytes = (q.csr_nbytes() + q.vector_nbytes()) * preset.data_scale
    var_bytes = 3 * q.vector_nbytes() * preset.data_scale
    # Aggregate compute seconds per iteration (all ranks): 2 nnz flops at a
    # memory-bound effective rate, split across the three compute stages.
    total_work = 2.0 * q.nnz * preset.data_scale / 1.0e9
    gather_bytes = 8.0 * n_rows
    return SyntheticConfig(
        iterations=preset.iterations,
        n_rows=n_rows,
        fidelity=fidelity,
        constant_bytes=const_bytes,
        variable_bytes=var_bytes,
        stages=(
            StageSpec(kind="compute", work=total_work * 0.5),
            StageSpec(kind="allgatherv", nbytes=gather_bytes),
            StageSpec(kind="compute", work=total_work * 0.3),
            StageSpec(kind="allreduce", nbytes=8.0),
            StageSpec(kind="compute", work=total_work * 0.2),
            StageSpec(kind="allreduce", nbytes=8.0),
        ),
    )
