"""Iteration stages of the synthetic application.

The paper's tool parameterises each emulated iteration as a sequence of
stages: compute blocks and communication operations with configured byte
counts (§4.1).  Each stage here is runnable at two fidelities:

* ``full`` — the real simulated-MPI collective, message for message (used
  by tests and small runs);
* ``sketch`` — an aggregate-equivalent exchange: the same total bytes
  through each NIC and a latency make-up term, but one neighbour message
  instead of p-1 ring steps.  This keeps event counts tractable for the
  6000-simulation evaluation sweeps while preserving NIC contention, which
  is what couples the application to a concurrent redistribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from ..simulate.primitives import Timeout
from ..smpi.datatypes import Blob

__all__ = ["StageSpec", "run_stage", "STAGE_KINDS"]

STAGE_KINDS = ("compute", "allreduce", "allgatherv", "p2p")


@dataclass(frozen=True)
class StageSpec:
    """One stage of the emulated iteration.

    ``work``: aggregate single-core seconds for compute stages; divided by
    the group size (``scale="linear"``, the default for data-parallel work)
    or charged per rank as-is (``scale="constant"``).

    ``nbytes``: allreduce — message size; allgatherv — the *total* gathered
    vector size; p2p — bytes per neighbour message.
    """

    kind: str
    work: float = 0.0
    nbytes: float = 0.0
    scale: str = "linear"
    #: relative lognormal jitter applied to compute stages (run-to-run noise
    #: for the statistics pipeline).
    jitter: float = 0.02

    def __post_init__(self):
        if self.kind not in STAGE_KINDS:
            raise ValueError(f"unknown stage kind {self.kind!r}")
        if self.scale not in ("linear", "constant"):
            raise ValueError(f"unknown scale {self.scale!r}")
        if self.work < 0 or self.nbytes < 0 or self.jitter < 0:
            raise ValueError("stage parameters must be >= 0")


def run_stage(mpi, comm, spec: StageSpec, iteration: int, fidelity: str = "full"):
    """Execute one stage on the calling rank (generator)."""
    if fidelity not in ("full", "sketch"):
        raise ValueError(f"unknown fidelity {fidelity!r}")
    if spec.kind == "compute":
        yield from _compute(mpi, comm, spec)
    elif spec.kind == "allreduce":
        yield from _allreduce(mpi, comm, spec, iteration, fidelity)
    elif spec.kind == "allgatherv":
        yield from _allgatherv(mpi, comm, spec, fidelity)
    else:
        yield from _p2p(mpi, comm, spec)


def _compute(mpi, comm, spec: StageSpec):
    p = comm.size
    work = spec.work / p if spec.scale == "linear" else spec.work
    if spec.jitter > 0:
        work *= float(mpi.machine.rng.lognormal(0.0, spec.jitter))
    if work > 0:
        yield from mpi.compute(work)


def _allreduce(mpi, comm, spec: StageSpec, iteration: int, fidelity: str):
    p = comm.size
    if p == 1:
        return
    if fidelity == "full":
        yield from mpi.allreduce(Blob(spec.nbytes) if spec.nbytes > 8 else 0.0,
                                 op=_combine, comm=comm)
        return
    # sketch: one butterfly exchange with a rotating partner + a latency
    # make-up term for the remaining recursive-doubling rounds.  The
    # rotating distance restores global lock-step over log2(p) iterations.
    rounds = max(1, math.ceil(math.log2(p)))
    r = comm.rank_of_gid(mpi.gid)
    dist = 1 << (iteration % rounds)
    partner = r ^ dist
    base = mpi.next_coll_tag(comm)
    if partner < p:
        yield from mpi.sendrecv(
            Blob(spec.nbytes), partner, partner, tag=base, comm=comm
        )
    remaining = rounds - 1
    spec_net = mpi.machine.fabric
    if remaining > 0:
        yield Timeout(remaining * (spec_net.latency + spec.nbytes / spec_net.bandwidth))


def _combine(a, b):
    """Reduction op tolerant of Blob payloads (size is all that matters)."""
    if isinstance(a, Blob) or isinstance(b, Blob):
        return a if isinstance(a, Blob) else b
    return a + b


def _allgatherv(mpi, comm, spec: StageSpec, fidelity: str):
    p = comm.size
    if p == 1:
        return
    block = spec.nbytes / p
    if fidelity == "full":
        yield from mpi.allgatherv(Blob(block), comm=comm)
        return
    # sketch: the ring moves (p-1) blocks through every NIC; send them as
    # one aggregate message to the right neighbour, receive the same from
    # the left, and add the ring's residual latency.
    r = comm.rank_of_gid(mpi.gid)
    right = (r + 1) % p
    left = (r - 1) % p
    base = mpi.next_coll_tag(comm)
    agg = Blob((p - 1) * block)
    yield from mpi.sendrecv(agg, right, left, tag=base, comm=comm)
    if p > 2:
        yield Timeout((p - 2) * mpi.machine.fabric.latency)


def _p2p(mpi, comm, spec: StageSpec):
    """Nearest-neighbour halo exchange (both directions)."""
    p = comm.size
    if p == 1:
        return
    r = comm.rank_of_gid(mpi.gid)
    right = (r + 1) % p
    left = (r - 1) % p
    base = mpi.next_coll_tag(comm)
    sreq1 = yield from mpi.isend(Blob(spec.nbytes), right, tag=base, comm=comm)
    sreq2 = yield from mpi.isend(Blob(spec.nbytes), left, tag=base - 1, comm=comm)
    rreq1 = yield from mpi.irecv(source=left, tag=base, comm=comm)
    rreq2 = yield from mpi.irecv(source=right, tag=base - 1, comm=comm)
    yield from mpi.waitall([sreq1, sreq2, rreq1, rreq2])
