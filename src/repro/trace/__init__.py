"""Tracing and timeline visualisation for simulated runs.

Attach a :class:`Tracer` to a machine before launching work::

    tracer = Tracer().attach(machine)
    ... run the simulation ...
    print(ascii_timeline(tracer.events))
    Path("run.json").write_text(tracer.to_chrome_trace())  # chrome://tracing
"""

from .recorder import TraceEvent, Tracer
from .render import ascii_timeline

__all__ = ["Tracer", "TraceEvent", "ascii_timeline"]
