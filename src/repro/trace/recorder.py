"""Execution tracing for simulated runs.

A :class:`Tracer` attaches to a :class:`~repro.cluster.machine.Machine` and
records every network flow and CPU task as timed intervals, plus arbitrary
user marks.  Zero overhead when not attached (the hot paths are wrapped
only on attach).  Traces export to the Chrome ``chrome://tracing`` /
Perfetto JSON format and render as ASCII timelines
(:mod:`repro.trace.render`) — the practical way to *see* an overlap
strategy doing its thing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from ..cluster.machine import Machine

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One timed interval on one actor lane."""

    t0: float
    t1: float
    lane: str
    category: str  # "flow" | "cpu" | "mark"
    label: str

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class Tracer:
    """Records flows, CPU tasks and user marks of one machine."""

    def __init__(self, label_filter: Optional[str] = None):
        self.events: list[TraceEvent] = []
        #: substring filter applied to flow/CPU labels (None records all).
        self.label_filter = label_filter
        self._machine: Optional[Machine] = None
        self._installed = False
        self._saved: list[tuple[object, str, object]] = []

    # ----------------------------------------------------------------- attach
    def attach(self, machine: Machine) -> "Tracer":
        """Start recording ``machine``'s flows and compute tasks."""
        if self._installed:
            raise RuntimeError("tracer already attached")
        self._machine = machine
        self._installed = True
        self._wrap_network(machine)
        for node in machine.nodes:
            self._wrap_node(node)
        return self

    def detach(self) -> "Tracer":
        """Restore every wrapped hook; recorded events are kept."""
        if not self._installed:
            raise RuntimeError("tracer not attached")
        for obj, attr, orig in reversed(self._saved):
            setattr(obj, attr, orig)
        self._saved.clear()
        self._machine = None
        self._installed = False
        return self

    def _keep(self, label: str) -> bool:
        return self.label_filter is None or self.label_filter in label

    def _wrap_network(self, machine: Machine) -> None:
        net = machine.network
        sim = machine.sim
        orig = net.start_flow
        self._saved.append((net, "start_flow", orig))
        tracer = self

        def traced_start_flow(route, size, latency=0.0, label=""):
            t0 = sim.now
            ev = orig(route, size, latency=latency, label=label)
            if tracer._keep(label):
                lane = route[0].name.split(".")[0] if route else "net"

                def record(_ev):
                    tracer.events.append(
                        TraceEvent(t0, sim.now, f"net:{lane}", "flow",
                                   f"{label} ({size:.3g}B)")
                    )

                ev.add_callback(record)
            return ev

        net.start_flow = traced_start_flow

    def _wrap_node(self, node) -> None:
        sim = node.sim
        orig = node.submit
        self._saved.append((node, "submit", orig))
        tracer = self

        def traced_submit(work, on_done, label=""):
            t0 = sim.now

            def wrapped_done():
                if tracer._keep(label):
                    tracer.events.append(
                        TraceEvent(t0, sim.now, f"cpu:{node.name}", "cpu",
                                   label or "compute")
                    )
                on_done()

            orig(work, wrapped_done, label=label)

        node.submit = traced_submit

    # ------------------------------------------------------------------ marks
    def mark(self, lane: str, label: str, t0: float, t1: Optional[float] = None) -> None:
        """Record a user annotation (reconfiguration stages, checkpoints...)."""
        self.events.append(
            TraceEvent(t0, t1 if t1 is not None else t0, lane, "mark", label)
        )

    # ---------------------------------------------------------------- queries
    def lanes(self) -> list[str]:
        return sorted({e.lane for e in self.events})

    def between(self, t0: float, t1: float) -> list[TraceEvent]:
        return [e for e in self.events if e.t1 >= t0 and e.t0 <= t1]

    def total_time(self, lane: Optional[str] = None, category: Optional[str] = None) -> float:
        return sum(
            e.duration
            for e in self.events
            if (lane is None or e.lane == lane)
            and (category is None or e.category == category)
        )

    # ----------------------------------------------------------------- export
    def to_chrome_trace(self) -> str:
        """Chrome/Perfetto trace JSON (open in ``chrome://tracing``)."""
        out = []
        pids = {lane: i for i, lane in enumerate(self.lanes())}
        for e in sorted(self.events, key=lambda e: e.t0):
            out.append({
                "name": e.label,
                "cat": e.category,
                "ph": "X",
                "ts": e.t0 * 1e6,           # Chrome wants microseconds
                "dur": max(0.0, e.duration) * 1e6,
                "pid": pids[e.lane],
                "tid": 0,
                "args": {},
            })
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": lane},
            }
            for lane, pid in pids.items()
        ]
        return json.dumps({"traceEvents": meta + out})
