"""ASCII timeline rendering of traces."""

from __future__ import annotations

from typing import Optional, Sequence

from .recorder import TraceEvent

__all__ = ["ascii_timeline"]

_CHARS = {"flow": "=", "cpu": "#", "mark": "|"}


def ascii_timeline(
    events: Sequence[TraceEvent],
    width: int = 80,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
    max_lanes: int = 24,
) -> str:
    """One text row per lane; ``#`` CPU, ``=`` network, ``|`` marks.

    Overlapping intervals on a lane overwrite left to right; the goal is a
    quick visual of who was busy when, not exact accounting.
    """
    if not events:
        return "(no trace events)"
    lo = min(e.t0 for e in events) if t0 is None else t0
    hi = max(e.t1 for e in events) if t1 is None else t1
    if hi <= lo:
        hi = lo + 1e-9
    span = hi - lo

    def col(t: float) -> int:
        return int(min(width - 1, max(0, (t - lo) / span * (width - 1))))

    lanes: dict[str, list[str]] = {}
    for e in sorted(events, key=lambda e: e.t0):
        if e.t1 < lo or e.t0 > hi:
            continue
        row = lanes.setdefault(e.lane, [" "] * width)
        a, b = col(e.t0), col(e.t1)
        ch = _CHARS.get(e.category, "?")
        for i in range(a, b + 1):
            row[i] = ch

    if len(lanes) > max_lanes:
        shown = dict(sorted(lanes.items())[:max_lanes])
        hidden = len(lanes) - max_lanes
    else:
        shown, hidden = lanes, 0

    name_w = max(len(n) for n in shown) if shown else 4
    lines = [f"{'lane':<{name_w}} | t = [{lo:.4g} .. {hi:.4g}] s"]
    lines.append("-" * (name_w + 3 + width))
    for name in sorted(shown):
        lines.append(f"{name:<{name_w}} |" + "".join(shown[name]))
    if hidden:
        lines.append(f"... {hidden} more lane(s) hidden")
    lines.append("legend: # cpu   = network   | mark")
    return "\n".join(lines)
