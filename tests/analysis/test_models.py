"""Analytic models vs the simulator: they must agree where both are valid."""

import numpy as np
import pytest

from repro.analysis.models import (
    Prediction,
    chunk_times,
    message_time,
    predict_p2p_redistribution,
    predict_pairwise_alltoallv,
    predict_reconfiguration,
)
from repro.cluster import ETHERNET_10G, INFINIBAND_EDR, Machine
from repro.redistribution import (
    Dataset,
    FieldSpec,
    RedistMethod,
    RedistributionPlan,
    make_session,
)
from repro.simulate import Simulator
from repro.smpi import MpiWorld, SpawnModel, run_spmd


# ----------------------------------------------------------- message model
def test_message_time_components():
    t_small = message_time(ETHERNET_10G, 1000)  # eager
    assert t_small == pytest.approx(
        ETHERNET_10G.latency + 1000 / ETHERNET_10G.bandwidth
        + 1000 / ETHERNET_10G.copy_rate
    )
    t_big = message_time(ETHERNET_10G, 10_000_000)  # rendezvous
    assert t_big > 10_000_000 / ETHERNET_10G.bandwidth
    # Handshake adds two extra latencies over the eager formula.
    assert t_big == pytest.approx(
        3 * ETHERNET_10G.latency
        + 10_000_000 / ETHERNET_10G.bandwidth
        + 10_000_000 / ETHERNET_10G.copy_rate
    )


def test_simulated_message_matches_model():
    """Uncontended single transfer: simulator == closed form (within the
    per-message CPU overheads the model folds away)."""
    nbytes = 4_000_000
    payload = np.zeros(nbytes // 8)

    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.send(payload, dest=1)
            return None
        t0 = mpi.now
        yield from mpi.recv(source=0)
        return mpi.now - t0

    # Two cores per node with one rank each: the rx copy gets a spare core,
    # which is what the closed form assumes.  Slots 0,2 -> different nodes.
    for fabric in (ETHERNET_10G, INFINIBAND_EDR):
        sim = Simulator()
        machine = Machine(sim, 2, 2, fabric)
        world = MpiWorld(machine)
        res = world.launch(main, slots=[0, 2])
        sim.run()
        predicted = message_time(fabric, nbytes)
        assert res.procs[1].result == pytest.approx(predicted, rel=0.05), fabric.name


# ------------------------------------------------------ redistribution model
def run_redistribution_sim(plan, bytes_per_row, method, fabric):
    n_rows = plan.n_rows
    spec = (FieldSpec("blob", "virtual", constant=True, bytes_per_row=bytes_per_row),)
    sim = Simulator()
    machine = Machine(sim, 8, 1, fabric)
    world = MpiWorld(machine)

    def main(mpi):
        r = mpi.rank
        src = r if r < plan.n_sources else None
        dst = r if r < plan.n_targets else None
        if src is None and dst is None:
            return None
        session = make_session(
            method, mpi, mpi.comm_world, plan, names=["blob"],
            src_rank=src, dst_rank=dst,
            src_dataset=(
                Dataset.create(n_rows, spec, *plan.src_range(src), fill_virtual=True)
                if src is not None else None
            ),
            dst_dataset=(
                Dataset.create(n_rows, spec, *plan.dst_range(dst))
                if dst is not None else None
            ),
        )
        yield from session.run_blocking()
        return mpi.now

    world.launch(main, slots=range(max(plan.n_sources, plan.n_targets)))
    sim.run()
    return sim.now


@pytest.mark.parametrize("ns,nt", [(4, 2), (2, 4), (4, 4)])
@pytest.mark.parametrize("fabric", [ETHERNET_10G, INFINIBAND_EDR], ids=lambda f: f.name)
def test_p2p_simulation_close_to_model(ns, nt, fabric):
    plan = RedistributionPlan.block(64_000, ns, nt)
    bpr = 1000.0
    predicted = predict_p2p_redistribution(plan, bpr, fabric)
    simulated = run_redistribution_sim(plan, bpr, RedistMethod.P2P, fabric)
    if predicted == 0:  # identity plan: self-copies only
        assert simulated < 0.02
    else:
        assert simulated == pytest.approx(predicted, rel=0.5)
        # The model is a lower-bound-ish estimate: sim >= ~model.
        assert simulated >= predicted * 0.5


@pytest.mark.parametrize("ns,nt", [(4, 2), (2, 4)])
def test_pairwise_model_exceeds_p2p_model(ns, nt):
    """The serialized collective schedule costs at least as much as the
    concurrent P2P one — the analytical root of the paper's Figure 2."""
    plan = RedistributionPlan.block(64_000, ns, nt)
    bpr = 1000.0
    for fabric in (ETHERNET_10G, INFINIBAND_EDR):
        assert predict_pairwise_alltoallv(plan, bpr, fabric) >= (
            predict_p2p_redistribution(plan, bpr, fabric) * 0.8
        )


def test_chunk_times_cover_all_cross_transfers():
    plan = RedistributionPlan.block(1000, 3, 5)
    times = chunk_times(plan, 8.0, ETHERNET_10G)
    crossing = [t for t in plan.all_transfers() if t.src != t.dst]
    assert len(times) == len(crossing)
    assert all(v > 0 for v in times.values())


# ------------------------------------------------------------- end to end
def test_predict_reconfiguration_breakdown():
    plan = RedistributionPlan.block(100_000, 4, 8)
    spawn = SpawnModel()
    pred = predict_reconfiguration(
        plan, 500.0, ETHERNET_10G, spawn, cores_per_node=2, method="p2p",
        merge=True,
    )
    assert pred.spawn > 0  # 4 new processes
    assert pred.redistribution > 0
    assert pred.total == pytest.approx(pred.spawn + pred.redistribution)
    # Merge shrink spawns nothing.
    plan2 = RedistributionPlan.block(100_000, 8, 4)
    pred2 = predict_reconfiguration(
        plan2, 500.0, ETHERNET_10G, spawn, cores_per_node=2, merge=True
    )
    assert pred2.spawn == pytest.approx(spawn.merge_cost)
    # Baseline always spawns NT.
    pred3 = predict_reconfiguration(
        plan2, 500.0, ETHERNET_10G, spawn, cores_per_node=2, merge=False
    )
    assert pred3.spawn > pred2.spawn


def test_predict_reconfiguration_method_validation():
    plan = RedistributionPlan.block(100, 2, 2)
    with pytest.raises(ValueError):
        predict_reconfiguration(
            plan, 8.0, ETHERNET_10G, SpawnModel(), 2, method="bogus"
        )


def test_predict_rma_cheaper_control_than_p2p():
    """Same bandwidth floor, but no size round and no per-chunk rendezvous:
    the RMA closed form undercuts P2P's on every plan."""
    from repro.analysis.models import (
        predict_p2p_redistribution,
        predict_rma_redistribution,
    )

    plan = RedistributionPlan.block(100_000, 8, 4)
    rma = predict_rma_redistribution(plan, 500.0, ETHERNET_10G)
    p2p = predict_p2p_redistribution(plan, 500.0, ETHERNET_10G)
    assert 0 < rma < p2p
    empty = RedistributionPlan.block(100, 2, 2)  # identity: nothing moves
    assert predict_rma_redistribution(empty, 8.0, ETHERNET_10G) == 0.0


def test_baseline_vs_merge_prediction_matches_paper_ordering():
    """The closed form alone already predicts Figure 2's ordering."""
    plan = RedistributionPlan.block(500_000, 8, 4)
    spawn = SpawnModel()
    merge = predict_reconfiguration(plan, 100.0, ETHERNET_10G, spawn, 2,
                                    method="p2p", merge=True)
    baseline = predict_reconfiguration(plan, 100.0, ETHERNET_10G, spawn, 2,
                                       method="p2p", merge=False)
    assert merge.total < baseline.total
