"""Terminal plots and table emission."""

import csv
import io

import pytest

from repro.analysis import csv_table, format_cell, line_chart, markdown_table, method_grid


# ----------------------------------------------------------------- tables
def test_markdown_table_shape():
    text = markdown_table(["a", "b"], [[1, 2.5], ["x", None]])
    lines = text.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert "2.500" in lines[2]
    assert "| x | - |" == lines[3]


def test_format_cell_ranges():
    assert format_cell(None) == "-"
    assert format_cell(0.0) == "0"
    assert format_cell(1234.5) == "1.234e+03" or "e" in format_cell(1234.5)
    assert format_cell(0.25) == "0.250"
    assert format_cell("name") == "name"
    assert format_cell(5) == "5"


def test_csv_table_roundtrip():
    text = csv_table(["x", "y"], [[1, 2], [3, None]])
    rows = list(csv.reader(io.StringIO(text)))
    assert rows == [["x", "y"], ["1", "2"], ["3", ""]]


# ------------------------------------------------------------------ charts
def test_line_chart_contains_marks_and_legend():
    text = line_chart(
        {"fast": [1.0, 2.0, 3.0], "slow": [2.0, 4.0, 6.0]},
        x_labels=[10, 20, 40],
        title="demo",
    )
    assert "demo" in text
    assert "o=fast" in text and "x=slow" in text
    assert "10" in text and "40" in text


def test_line_chart_flat_series():
    text = line_chart({"flat": [1.0, 1.0]}, x_labels=["a", "b"])
    assert "o=flat" in text


def test_line_chart_validation():
    with pytest.raises(ValueError):
        line_chart({}, x_labels=[1])
    with pytest.raises(ValueError):
        line_chart({"s": [1.0]}, x_labels=[1, 2])
    with pytest.raises(ValueError):
        line_chart({"s": [None]}, x_labels=[1])


def test_line_chart_skips_none_points():
    text = line_chart({"s": [1.0, None, 3.0]}, x_labels=[1, 2, 3])
    assert "o=s" in text


def test_method_grid_layout():
    preferred = {
        (2, 4): "Merge COLS",
        (4, 2): "Merge COLS",
        (2, 8): "Baseline P2PS",
        (8, 2): "Merge COLS",
        (4, 8): "Merge COLS",
        (8, 4): "Merge COLS",
    }
    text = method_grid(preferred, ladder=[2, 4, 8], title="grid")
    assert "grid" in text
    assert "1: Merge COLS" in text
    assert "2: Baseline P2PS" in text
    # Diagonal shows dots.
    assert "." in text


def test_method_grid_with_explicit_legend():
    text = method_grid({(2, 4): "m"}, ladder=[2, 4], legend={"m": 7})
    assert "7: m" in text
