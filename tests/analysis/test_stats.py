"""Statistics pipeline: Shapiro/Kruskal wrappers, Conover from scratch,
selection logic, metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    alpha_ratio,
    alpha_table,
    compare_groups,
    conover_posthoc,
    dominance_count,
    kruskal_wallis,
    median,
    preferred_map,
    shapiro_normality,
    speedup,
    speedup_table,
)


# ------------------------------------------------------------- shapiro
def test_shapiro_normal_data_not_rejected():
    rng = np.random.default_rng(0)
    p, rejects = shapiro_normality(rng.standard_normal(200))
    assert not rejects and p > 0.05


def test_shapiro_skewed_data_rejected():
    rng = np.random.default_rng(0)
    p, rejects = shapiro_normality(rng.exponential(size=200) ** 3)
    assert rejects


def test_shapiro_degenerate_inputs_reject():
    assert shapiro_normality([1.0, 1.0])[1]
    assert shapiro_normality([2.0] * 50)[1]


# ------------------------------------------------------------- kruskal
def test_kruskal_distinguishes_shifted_groups():
    rng = np.random.default_rng(1)
    a = rng.normal(0, 1, 30)
    b = rng.normal(5, 1, 30)
    h, p, distinct = kruskal_wallis({"a": a, "b": b})
    assert distinct and p < 1e-6


def test_kruskal_same_distribution_not_distinguished():
    rng = np.random.default_rng(2)
    h, p, distinct = kruskal_wallis(
        {"a": rng.normal(0, 1, 20), "b": rng.normal(0, 1, 20)}
    )
    assert not distinct


def test_kruskal_identical_data():
    h, p, distinct = kruskal_wallis({"a": [1.0, 1.0], "b": [1.0, 1.0]})
    assert p == 1.0 and not distinct


def test_kruskal_needs_two_groups():
    with pytest.raises(ValueError):
        kruskal_wallis({"a": [1, 2, 3]})


# ------------------------------------------------------------- conover
def test_conover_separates_clearly_different_groups():
    rng = np.random.default_rng(3)
    groups = {
        "fast": list(rng.normal(1.0, 0.05, 8)),
        "slow": list(rng.normal(5.0, 0.05, 8)),
        "slower": list(rng.normal(9.0, 0.05, 8)),
    }
    p = conover_posthoc(groups)
    assert p[("fast", "slow")] < 0.01
    assert p[("fast", "slower")] < 0.01
    assert p[("fast", "slow")] == p[("slow", "fast")]  # symmetric


def test_conover_similar_groups_not_separated():
    rng = np.random.default_rng(4)
    base = rng.normal(3.0, 1.0, 12)
    groups = {"a": base + rng.normal(0, 0.01, 12), "b": base}
    p = conover_posthoc(groups)
    assert p[("a", "b")] > 0.05


def test_conover_identical_data_p_one():
    p = conover_posthoc({"a": [2.0, 2.0, 2.0], "b": [2.0, 2.0, 2.0]})
    assert p[("a", "b")] == 1.0


def test_conover_validation():
    with pytest.raises(ValueError):
        conover_posthoc({"a": [1.0, 2.0]})
    with pytest.raises(ValueError):
        conover_posthoc({"a": [1.0], "b": []})


def test_conover_against_known_reference():
    """Cross-check against scikit-posthocs' documented example behaviour:
    three groups where only the third differs."""
    groups = {
        "g1": [1.0, 2.0, 3.0, 5.0, 1.0],
        "g2": [12.0, 31.0, 54.0, 62.0, 12.0],
        "g3": [10.0, 12.0, 6.0, 74.0, 11.0],
    }
    p = conover_posthoc(groups)
    # g1 vs g2 strongly different; g2 vs g3 not.
    assert p[("g1", "g2")] < 0.05
    assert p[("g2", "g3")] > 0.05


@given(
    shift=st.floats(min_value=5.0, max_value=50.0),
    n=st.integers(min_value=5, max_value=15),
)
@settings(max_examples=25, deadline=None)
def test_conover_monotone_in_separation(shift, n):
    rng = np.random.default_rng(int(shift * 100) % 2**32)
    a = list(rng.normal(0, 1, n))
    near = {"a": a, "b": [x + 0.01 for x in a]}
    far = {"a": a, "b": [x + shift for x in a]}
    assert conover_posthoc(far)[("a", "b")] <= conover_posthoc(near)[("a", "b")]


# -------------------------------------------------------------- compare
def test_compare_groups_winner_set():
    rng = np.random.default_rng(5)
    groups = {
        "best": list(rng.normal(1.0, 0.02, 6)),
        "tied": list(rng.normal(1.001, 0.02, 6)),
        "bad": list(rng.normal(4.0, 0.02, 6)),
    }
    comp = compare_groups(groups)
    assert comp.distinguishable
    # "best" and "tied" are statistically the same group; either may hold
    # the lowest sample median, but both must be in the winner set.
    assert comp.best in ("best", "tied")
    assert {"best", "tied"} <= set(comp.winners)
    assert "bad" not in comp.winners


def test_compare_groups_indistinguishable_keeps_all():
    comp = compare_groups({"a": [1.0, 1.0, 1.0], "b": [1.0, 1.0, 1.0]})
    assert not comp.distinguishable
    assert set(comp.winners) == {"a", "b"}


# ------------------------------------------------------------- selection
def test_preferred_map_uses_frequency_tie_break():
    rng = np.random.default_rng(6)

    def cell(best, tied_with=None):
        g = {
            "m1": list(rng.normal(5.0, 0.01, 5)),
            "m2": list(rng.normal(5.0, 0.01, 5)),
            "m3": list(rng.normal(9.0, 0.01, 5)),
        }
        g[best] = list(rng.normal(1.0, 0.01, 5))
        if tied_with:
            g[tied_with] = [x + 0.001 for x in g[best]]
        return g

    cells = {
        (4, 2): cell("m1"),
        (4, 8): cell("m1"),
        (2, 8): cell("m1", tied_with="m2"),  # tie -> m1 by global frequency
    }
    pref = preferred_map(cells)
    assert pref[(4, 2)] == "m1"
    assert pref[(2, 8)] == "m1"
    counts = dominance_count(pref)
    assert counts["m1"] == 3


# --------------------------------------------------------------- metrics
def test_alpha_and_speedup():
    assert alpha_ratio([2.0, 2.2, 2.1], [2.0, 2.0, 2.0]) == pytest.approx(1.05)
    assert speedup([10.0, 10.0], [8.0, 8.0]) == pytest.approx(1.25)
    assert median([3.0, 1.0, 2.0]) == 2.0
    with pytest.raises(ValueError):
        median([])
    with pytest.raises(ValueError):
        alpha_ratio([1.0], [0.0])


def test_alpha_and_speedup_tables():
    times = {
        "merge-col-a": [2.2], "merge-col-t": [2.6], "merge-col-s": [2.0],
    }
    alphas = alpha_table(
        times, {"merge-col-a": "merge-col-s", "merge-col-t": "merge-col-s"}
    )
    assert alphas["merge-col-a"] == pytest.approx(1.1)
    assert alphas["merge-col-t"] == pytest.approx(1.3)

    apps = {"baseline-col-s": [12.0], "merge-p2p-a": [10.0]}
    sp = speedup_table(apps, reference="baseline-col-s")
    assert sp["merge-p2p-a"] == pytest.approx(1.2)
    assert sp["baseline-col-s"] == pytest.approx(1.0)
    with pytest.raises(KeyError):
        speedup_table(apps, reference="nope")
