"""Real CG on simulated MPI: correctness, and the headline malleability
check — a reconfiguration mid-solve leaves the residual stream identical."""

import numpy as np
import pytest

from repro.apps import (
    ConjugateGradientApp,
    cg_reference,
    cg_solve,
    laplacian_3d,
    poisson_2d,
    queen4147_stats,
    spd_check,
)
from repro.cluster import ETHERNET_10G, Machine
from repro.malleability import (
    ALL_CONFIGS,
    ReconfigConfig,
    ReconfigRequest,
    RunStats,
    run_malleable,
)
from repro.redistribution import block_range
from repro.simulate import Simulator
from repro.smpi import MpiWorld, SpawnModel, run_spmd


def make_problem(n_grid=6):
    a = poisson_2d(n_grid)
    rng = np.random.default_rng(7)
    b = rng.standard_normal(a.shape[0])
    return a, b


# ------------------------------------------------------------- matrices
def test_poisson_2d_is_spd():
    assert spd_check(poisson_2d(8))


def test_laplacian_3d_shapes_and_spd():
    a = laplacian_3d(4)
    assert a.shape == (64, 64)
    assert spd_check(a)
    a3 = laplacian_3d(3, dofs=3)
    assert a3.shape == (81, 81)
    assert spd_check(a3)
    # dofs multiply nnz per row.
    assert a3.nnz / a3.shape[0] > a.nnz / a.shape[0]


def test_laplacian_validation():
    with pytest.raises(ValueError):
        laplacian_3d(0)
    with pytest.raises(ValueError):
        laplacian_3d(2, dofs=0)


def test_queen_stats_match_published_shape():
    q = queen4147_stats()
    assert q.n_rows == 4_147_110
    assert q.nnz == 316_548_962
    assert 70 < q.nnz_per_row < 80
    # ~3.8 GB CSR + vectors: the paper redistributes 3.947 GB total.
    assert q.csr_nbytes() / 1e9 == pytest.approx(3.83, abs=0.05)


# ------------------------------------------------------- standalone solve
@pytest.mark.parametrize("p", [1, 2, 3, 4])
def test_cg_solve_matches_scipy(p):
    a, b = make_problem(6)
    n = a.shape[0]

    def main(mpi):
        lo, hi = block_range(n, mpi.size, mpi.rank)
        x_local, res = yield from cg_solve(
            mpi, a[lo:hi], b[lo:hi], lo, hi, n, tol=1e-10, max_iter=200
        )
        return x_local

    results, _ = run_spmd(main, p, n_nodes=2, cores_per_node=2)
    x = np.concatenate(results)
    expected = np.linalg.solve(a.toarray(), b)
    np.testing.assert_allclose(x, expected, atol=1e-7)


def test_distributed_residuals_match_reference_exactly():
    """Same operation order => bitwise-equal residual history."""
    a, b = make_problem(5)
    n = a.shape[0]
    iters = 15
    app = ConjugateGradientApp(a, b, n_iterations=iters)

    def main(mpi):
        lo, hi = block_range(n, mpi.size, mpi.rank)
        from repro.redistribution import Dataset

        dataset = Dataset.create(
            n, app.specs, lo, hi, data=app.initial_data(lo, hi)
        )
        for it in range(iters):
            yield from app.iterate(mpi, mpi.comm_world, dataset, it)
        return None

    run_spmd(main, 3, n_nodes=2, cores_per_node=2)
    _, ref = cg_reference(a, b, iters)
    assert app.residuals == pytest.approx(ref, rel=1e-12)


# ------------------------------------------------------ malleable solves
def run_malleable_cg(config, ns, nt, n_grid=5, iters=16, reconf_at=6):
    a, b = make_problem(n_grid)
    app = ConjugateGradientApp(a, b, n_iterations=iters)
    sim = Simulator()
    machine = Machine(sim, n_nodes=4, cores_per_node=2, fabric=ETHERNET_10G)
    world = MpiWorld(
        machine, spawn_model=SpawnModel(base=0.002, per_process=2e-4, per_node=2e-4)
    )
    stats = RunStats()
    requests = [ReconfigRequest(at_iteration=reconf_at, n_targets=nt)]
    world.launch(run_malleable, slots=range(ns), args=(app, config, requests, stats))
    sim.run()
    return app, stats, a, b


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.key)
def test_reconfiguration_preserves_cg_trajectory(config):
    """The flagship validation: expanding 2->4 mid-solve must not change a
    single residual value vs the sequential reference."""
    iters = 16
    app, stats, a, b = run_malleable_cg(config, ns=2, nt=4, iters=iters)
    _, ref = cg_reference(a, b, iters)
    assert len(app.residuals) == iters
    assert app.residuals == pytest.approx(ref, rel=1e-12)
    assert stats.total_iterations() == iters


@pytest.mark.parametrize("config_key", ["merge-p2p-a", "baseline-col-t", "merge-col-s"])
def test_shrink_preserves_cg_trajectory(config_key):
    iters = 16
    config = ReconfigConfig.parse(config_key)
    app, stats, a, b = run_malleable_cg(config, ns=4, nt=2, iters=iters)
    _, ref = cg_reference(a, b, iters)
    assert app.residuals == pytest.approx(ref, rel=1e-12)


def test_malleable_cg_converges():
    config = ReconfigConfig.parse("merge-col-a")
    app, stats, a, b = run_malleable_cg(config, ns=2, nt=4, n_grid=5, iters=40)
    assert app.residuals[-1] < 1e-6 * app.residuals[0]
