"""Jacobi app: convergence and reconfiguration-transparency."""

import numpy as np
import pytest

from repro.apps import JacobiApp, poisson_2d
from repro.cluster import ETHERNET_10G, Machine
from repro.malleability import (
    ReconfigConfig,
    ReconfigRequest,
    RunStats,
    run_malleable,
)
from repro.simulate import Simulator
from repro.smpi import MpiWorld, SpawnModel


def jacobi_reference(a, b, iters, omega=0.6):
    x = np.zeros_like(b)
    dinv = 1.0 / a.diagonal()
    residuals = []
    for _ in range(iters):
        resid = b - a @ x
        x = x + omega * dinv * resid
        residuals.append(float(np.sqrt(resid @ resid)))
    return x, residuals


def run_malleable_jacobi(config_key, ns, nt, iters=14, reconf_at=5):
    a = poisson_2d(5)
    rng = np.random.default_rng(3)
    b = rng.standard_normal(a.shape[0])
    app = JacobiApp(a, b, n_iterations=iters)
    sim = Simulator()
    machine = Machine(sim, 4, 2, ETHERNET_10G)
    world = MpiWorld(
        machine, spawn_model=SpawnModel(base=0.002, per_process=2e-4, per_node=2e-4)
    )
    stats = RunStats()
    requests = [ReconfigRequest(at_iteration=reconf_at, n_targets=nt)]
    config = ReconfigConfig.parse(config_key)
    world.launch(run_malleable, slots=range(ns), args=(app, config, requests, stats))
    sim.run()
    return app, stats, a, b


@pytest.mark.parametrize("config_key,ns,nt", [
    ("merge-p2p-t", 2, 4),
    ("baseline-col-a", 3, 2),
    ("merge-col-s", 4, 3),
])
def test_jacobi_trajectory_survives_reconfiguration(config_key, ns, nt):
    iters = 14
    app, stats, a, b = run_malleable_jacobi(config_key, ns, nt, iters=iters)
    _, ref = jacobi_reference(a, b, iters)
    assert app.residuals == pytest.approx(ref, rel=1e-12)
    assert stats.total_iterations() == iters


def test_jacobi_validation():
    from scipy import sparse as sp

    with pytest.raises(ValueError):
        JacobiApp(sp.csr_matrix((3, 4)), np.zeros(3), 5)
    singular = sp.csr_matrix(np.array([[1.0, 0], [0, 0.0]]))
    with pytest.raises(ValueError):
        JacobiApp(singular, np.zeros(2), 5)
