"""Power iteration: convergence and reconfiguration transparency."""

import numpy as np
import pytest

from repro.apps import PowerIterationApp, laplacian_3d, power_iteration_reference
from repro.cluster import INFINIBAND_EDR, Machine
from repro.malleability import (
    ReconfigConfig,
    ReconfigRequest,
    RunStats,
    run_malleable,
)
from repro.simulate import Simulator
from repro.smpi import MpiWorld, SpawnModel


def run_malleable_power(config_key, ns, nt, iters=20, reconf_at=8):
    a = laplacian_3d(4)
    app = PowerIterationApp(a, n_iterations=iters, seed=3)
    sim = Simulator()
    machine = Machine(sim, 4, 2, INFINIBAND_EDR)
    world = MpiWorld(
        machine, spawn_model=SpawnModel(base=0.002, per_process=2e-4, per_node=2e-4)
    )
    stats = RunStats()
    requests = [ReconfigRequest(at_iteration=reconf_at, n_targets=nt)]
    world.launch(
        run_malleable, slots=range(ns),
        args=(app, ReconfigConfig.parse(config_key), requests, stats),
    )
    sim.run()
    return app, stats, a


@pytest.mark.parametrize("config_key,ns,nt", [
    ("merge-col-a", 2, 5),
    ("baseline-p2p-s", 4, 2),
    ("merge-rma-a", 3, 6),
])
def test_reconfiguration_preserves_eigenvalue_stream(config_key, ns, nt):
    iters = 20
    app, stats, a = run_malleable_power(config_key, ns, nt, iters=iters)
    _, ref = power_iteration_reference(a, iters, seed=3)
    assert app.eigenvalue_estimates == pytest.approx(ref, rel=1e-12)
    assert stats.total_iterations() == iters


def test_estimates_converge_to_dominant_eigenvalue():
    a = laplacian_3d(4)
    app, stats, _ = run_malleable_power("merge-col-s", 2, 4, iters=60, reconf_at=20)
    from scipy.sparse.linalg import eigsh

    top = float(eigsh(a, k=1, return_eigenvectors=False)[0])
    assert app.eigenvalue_estimates[-1] == pytest.approx(top, rel=1e-4)


def test_rejects_nonsquare():
    from scipy import sparse as sp

    with pytest.raises(ValueError):
        PowerIterationApp(sp.csr_matrix((3, 5)), 10)
