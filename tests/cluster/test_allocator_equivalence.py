"""Equivalence of the incremental allocator against the reference oracle.

The PR 1 network rewrite replaced the seed's O(rounds x links x flows)
progressive filling with an incremental, numpy-batched allocator plus
fast paths for isolated flows.  The seed algorithm is kept verbatim as
:func:`repro.cluster.network.max_min_reference`; this module hammers the
production allocator against it on randomized flow/link topologies
(>= 200 cases) and checks the capacity invariant on every one.
"""

import math
import random

from repro.cluster.network import Flow, Network, max_min_reference
from repro.simulate import Simulator

N_CASES = 250


def _random_topology(rng: random.Random):
    """A random network plus flows injected directly (no event machinery)."""
    sim = Simulator()
    net = Network(sim)
    n_links = rng.randint(1, 10)
    links = [
        net.add_link(f"l{i}", rng.uniform(0.5, 1e6)) for i in range(n_links)
    ]
    n_flows = rng.randint(1, 20)
    flows = []
    for i in range(n_flows):
        route = rng.sample(links, rng.randint(1, n_links))
        f = Flow(route, size=1.0, done=sim.event(), label=f"f{i}")
        net._active.add(f)
        for link in route:
            link.flows.add(f)
            link.nflows += 1
        flows.append(f)
    return net, links, flows


def test_incremental_allocator_matches_reference_on_random_topologies():
    rng = random.Random(0xC0FFEE)
    for case in range(N_CASES):
        net, links, flows = _random_topology(rng)
        want = max_min_reference(net._active, links)
        net._max_min_allocate()
        for f in flows:
            assert math.isclose(
                f.rate, want[f], rel_tol=1e-9, abs_tol=1e-12
            ), f"case {case}: flow {f.label} got {f.rate!r}, want {want[f]!r}"
        # Feasibility: no link over capacity (within float tolerance).
        for link in links:
            total = sum(f.rate for f in link.flows)
            assert total <= link.capacity * (1 + 1e-9), (
                f"case {case}: link {link.name} over capacity"
            )


def test_small_and_numpy_paths_agree():
    """Topologies straddling the small/numpy dispatch threshold produce the
    same rates regardless of which code path runs (both must match the
    reference, hence each other)."""
    rng = random.Random(1234)
    for _ in range(60):
        sim = Simulator()
        net = Network(sim)
        # >16 links and >16 flows forces the numpy path; a sub-slice of the
        # same capacities under 16 takes the list path.
        caps = [rng.uniform(1.0, 100.0) for _ in range(20)]
        for n_links, n_flows in ((4, 8), (20, 20)):
            links = [net.add_link(f"l{i}", caps[i]) for i in range(n_links)]
            for i in range(n_flows):
                route = rng.sample(links, rng.randint(1, min(4, n_links)))
                f = Flow(route, 1.0, sim.event(), label=f"f{i}")
                net._active.add(f)
                for link in route:
                    link.flows.add(f)
                    link.nflows += 1
            want = max_min_reference(net._active, net.links)
            net._max_min_allocate()
            for f in list(net._active):
                assert math.isclose(f.rate, want[f], rel_tol=1e-9)
                for link in f.route:
                    link.flows.discard(f)
                    link.nflows -= 1
            net._active.clear()


def test_debug_invariant_mode_simulation_smoke():
    """A full simulated run with REPRO_NET_DEBUG-style checking enabled:
    every rate update is verified against the oracle as the sim runs."""
    from repro.cluster.fabrics import fabric_by_name
    from repro.cluster.machine import Machine
    from repro.malleability.config import ReconfigConfig
    from repro.malleability.rms import ReconfigRequest
    from repro.simulate.core import Simulator as Sim
    from repro.smpi.world import MpiWorld
    from repro.synthetic.application import launch_synthetic
    from repro.synthetic.presets import SCALES, cg_emulation_config

    preset = SCALES["tiny"]
    cfg = cg_emulation_config("tiny").with_reconfigurations(
        [ReconfigRequest(preset.reconfigure_at, 4)]
    )
    sim = Sim()
    machine = Machine(
        sim,
        preset.n_nodes,
        preset.cores_per_node,
        fabric_by_name("ethernet"),
        seed=7,
    )
    machine.network.debug_invariants = True  # oracle-check every update
    world = MpiWorld(machine, spawn_model=preset.spawn_model)
    stats = launch_synthetic(
        world, cfg, ReconfigConfig.parse("merge-p2p-t"), n_initial=2
    )
    sim.run()  # would raise AssertionError inside _debug_verify on drift
    assert stats.last_reconfig.reconfiguration_time > 0
    assert machine.network.reallocations > 0
    assert machine.network.fast_path_hits > 0
