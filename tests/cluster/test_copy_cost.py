"""Receiver-side copy cost: the CPU/network coupling of TCP-like fabrics."""

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, INFINIBAND_EDR, Machine
from repro.simulate import Simulator
from repro.smpi import MpiWorld

PAYLOAD = np.zeros(2_000_000)  # 16 MB


def delivery_time(fabric, busy_receiver_node: bool):
    """Time for rank 1 to receive 16 MB while (optionally) its node is
    fully loaded with compute."""
    sim = Simulator()
    machine = Machine(sim, 2, 1, fabric)
    world = MpiWorld(machine)

    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.send(PAYLOAD, dest=1)
            return None
        t0 = mpi.now
        yield from mpi.recv(source=0)
        return mpi.now - t0

    def burner(mpi):
        yield from mpi.compute(10.0)
        return None

    res = world.launch(main, slots=[0, 1])
    if busy_receiver_node:
        world.launch(burner, slots=[1])  # same node as rank 1
    sim.run(until=10.0)
    return res.procs[1].result


def test_ethernet_receive_slows_under_load():
    idle = delivery_time(ETHERNET_10G, busy_receiver_node=False)
    busy = delivery_time(ETHERNET_10G, busy_receiver_node=True)
    # The touch-copy now shares the core with the burner: measurably slower.
    assert busy > idle * 1.15


def test_infiniband_less_load_sensitive_than_ethernet():
    """RDMA receive path is much less CPU-coupled than TCP's."""
    ratios = {}
    for fabric in (ETHERNET_10G, INFINIBAND_EDR):
        idle = delivery_time(fabric, busy_receiver_node=False)
        busy = delivery_time(fabric, busy_receiver_node=True)
        ratios[fabric.name] = busy / idle
    assert ratios["infiniband"] < ratios["ethernet"]
    # And in absolute terms, IB load sensitivity stays small.
    assert ratios["infiniband"] < 1.25


def test_copy_cost_share_of_ethernet_delivery():
    idle = delivery_time(ETHERNET_10G, busy_receiver_node=False)
    wire = PAYLOAD.nbytes / ETHERNET_10G.bandwidth
    copy = PAYLOAD.nbytes / ETHERNET_10G.copy_rate
    # The receiver polls while its rx copy runs: on a single-core node the
    # two demands share the core, so the copy takes ~2x its nominal time.
    assert idle == pytest.approx(wire + 2 * copy, rel=0.1)
