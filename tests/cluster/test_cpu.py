"""Processor-sharing CPU model tests: rates, oversubscription, pollers."""

import pytest

from repro.cluster import ComputeOn, Node, PollerToken
from repro.simulate import Simulator, Timeout


def make_node(cores=2):
    sim = Simulator()
    return sim, Node(sim, 0, cores)


def test_single_task_runs_at_full_rate():
    sim, node = make_node(cores=2)

    def proc():
        yield ComputeOn(node, 3.0)

    sim.spawn(proc())
    sim.run()
    assert sim.now == pytest.approx(3.0)


def test_tasks_within_core_count_do_not_interfere():
    sim, node = make_node(cores=2)
    ends = []

    def proc(w):
        yield ComputeOn(node, w)
        ends.append(sim.now)

    sim.spawn(proc(2.0))
    sim.spawn(proc(3.0))
    sim.run()
    assert ends == [pytest.approx(2.0), pytest.approx(3.0)]


def test_oversubscription_halves_rate():
    sim, node = make_node(cores=1)
    ends = []

    def proc(w):
        yield ComputeOn(node, w)
        ends.append(sim.now)

    # Two 1-second tasks on one core: both at rate 1/2, both end at t=2.
    sim.spawn(proc(1.0))
    sim.spawn(proc(1.0))
    sim.run()
    assert ends == [pytest.approx(2.0), pytest.approx(2.0)]


def test_rate_recovers_when_task_finishes():
    sim, node = make_node(cores=1)
    ends = {}

    def proc(name, w):
        yield ComputeOn(node, w)
        ends[name] = sim.now

    # Short (1s work) and long (2s work) share a core.
    # Phase 1: both at rate .5 until short finishes at t=2 (short did 1s work).
    # Long then has 1s work left at rate 1 -> ends t=3.
    sim.spawn(proc("short", 1.0))
    sim.spawn(proc("long", 2.0))
    sim.run()
    assert ends["short"] == pytest.approx(2.0)
    assert ends["long"] == pytest.approx(3.0)


def test_late_arrival_slows_running_task():
    sim, node = make_node(cores=1)
    ends = {}

    def first():
        yield ComputeOn(node, 2.0)
        ends["first"] = sim.now

    def second():
        yield Timeout(1.0)
        yield ComputeOn(node, 2.0)
        ends["second"] = sim.now

    sim.spawn(first())
    sim.spawn(second())
    sim.run()
    # first: 1s solo (1.0 work done) + shares until its remaining 1.0 work
    # done at rate .5 -> +2s -> t=3.  second: at t=3 it has done 1.0 of 2.0,
    # then runs solo -> t=4.
    assert ends["first"] == pytest.approx(3.0)
    assert ends["second"] == pytest.approx(4.0)


def test_poller_consumes_share():
    sim, node = make_node(cores=1)
    ends = {}
    tok = PollerToken("waiter")

    def worker():
        yield ComputeOn(node, 1.0)
        ends["worker"] = sim.now

    def poller():
        node.add_poller(tok)
        yield Timeout(10.0)
        node.remove_poller(tok)

    sim.spawn(worker())
    sim.spawn(poller())
    sim.run()
    # Worker shares its single core with the polling process: rate 1/2.
    assert ends["worker"] == pytest.approx(2.0)


def test_poller_removal_restores_rate():
    sim, node = make_node(cores=1)
    ends = {}
    tok = PollerToken()

    def worker():
        yield ComputeOn(node, 2.0)
        ends["worker"] = sim.now

    def poller():
        node.add_poller(tok)
        yield Timeout(2.0)
        node.remove_poller(tok)

    sim.spawn(worker())
    sim.spawn(poller())
    sim.run()
    # 2s at rate .5 (1.0 work done), then 1s at rate 1 -> t=3.
    assert ends["worker"] == pytest.approx(3.0)


def test_pollers_alone_do_not_advance_anything():
    sim, node = make_node(cores=1)
    tok = PollerToken()

    def poller():
        node.add_poller(tok)
        yield Timeout(5.0)
        node.remove_poller(tok)

    sim.spawn(poller())
    sim.run()
    assert sim.now == pytest.approx(5.0)
    assert node.demand == 0


def test_zero_work_completes_immediately():
    sim, node = make_node()
    ends = []

    def proc():
        yield ComputeOn(node, 0.0)
        ends.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert ends == [0.0]


def test_negative_or_nan_work_rejected():
    sim, node = make_node()
    with pytest.raises(ValueError):
        node.submit(-1.0, lambda: None)
    with pytest.raises(ValueError):
        node.submit(float("nan"), lambda: None)


def test_double_poller_registration_rejected():
    sim, node = make_node()
    tok = PollerToken()
    node.add_poller(tok)
    with pytest.raises(ValueError):
        node.add_poller(tok)
    node.remove_poller(tok)
    with pytest.raises(ValueError):
        node.remove_poller(tok)


def test_many_tasks_rate_is_cores_over_n():
    sim, node = make_node(cores=4)
    ends = []

    def proc():
        yield ComputeOn(node, 1.0)
        ends.append(sim.now)

    for _ in range(8):
        sim.spawn(proc())
    sim.run()
    # 8 equal tasks on 4 cores -> rate .5 each -> all end at t=2.
    assert all(t == pytest.approx(2.0) for t in ends)
    assert len(ends) == 8


def test_busy_coreseconds_accounting():
    sim, node = make_node(cores=2)

    def proc():
        yield ComputeOn(node, 4.0)

    sim.spawn(proc())
    sim.run()
    assert node.busy_coreseconds == pytest.approx(4.0)


def test_node_requires_positive_cores():
    sim = Simulator()
    with pytest.raises(ValueError):
        Node(sim, 0, 0)


def test_compute_value_passthrough():
    sim, node = make_node()
    got = []

    def proc():
        got.append((yield ComputeOn(node, 1.0, value="done-token")))

    sim.spawn(proc())
    sim.run()
    assert got == ["done-token"]
