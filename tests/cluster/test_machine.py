"""Machine-level tests: placement rule, transfers, fabric presets."""

import pytest

from repro.cluster import (
    ETHERNET_10G,
    INFINIBAND_EDR,
    MEMORY_CHANNEL,
    FabricSpec,
    Machine,
    fabric_by_name,
)
from repro.simulate import Simulator, WaitEvent


def make_machine(n_nodes=2, cores=2, fabric=ETHERNET_10G):
    sim = Simulator()
    return sim, Machine(sim, n_nodes, cores, fabric)


# ----------------------------------------------------------------- placement
def test_block_placement_matches_paper_rule():
    sim, m = make_machine(n_nodes=8, cores=20)
    assert m.node_for_slot(0).node_id == 0
    assert m.node_for_slot(19).node_id == 0
    assert m.node_for_slot(20).node_id == 1
    assert m.node_for_slot(159).node_id == 7


def test_nodes_touched_is_ceil_div():
    sim, m = make_machine(n_nodes=8, cores=20)
    assert m.nodes_touched(1) == 1
    assert m.nodes_touched(20) == 1
    assert m.nodes_touched(21) == 2
    assert m.nodes_touched(160) == 8
    assert m.nodes_touched(500) == 8  # clamped


def test_slot_wraps_beyond_machine():
    sim, m = make_machine(n_nodes=2, cores=2)
    assert m.node_for_slot(4).node_id == 0  # wrapped


def test_negative_slot_rejected():
    sim, m = make_machine()
    with pytest.raises(ValueError):
        m.node_for_slot(-1)


def test_total_cores():
    sim, m = make_machine(n_nodes=3, cores=4)
    assert m.total_cores == 12


# ------------------------------------------------------------------ transfers
def transfer_time(m, sim, src, dst, nbytes):
    out = {}

    def proc():
        yield WaitEvent(m.transfer(src, dst, nbytes))
        out["t"] = sim.now

    sim.spawn(proc())
    sim.run()
    return out["t"]


def test_internode_transfer_uses_fabric():
    sim, m = make_machine(fabric=ETHERNET_10G)
    t = transfer_time(m, sim, m.nodes[0], m.nodes[1], 1.25e9)
    assert t == pytest.approx(ETHERNET_10G.latency + 1.0)


def test_intranode_transfer_uses_memory_channel():
    sim, m = make_machine()
    nbytes = 1.2e9
    t = transfer_time(m, sim, m.nodes[0], m.nodes[0], nbytes)
    expected = MEMORY_CHANNEL.latency + nbytes / MEMORY_CHANNEL.bandwidth
    assert t == pytest.approx(expected)


def test_infiniband_faster_than_ethernet():
    size = 100e6
    sim_e, m_e = make_machine(fabric=ETHERNET_10G)
    sim_i, m_i = make_machine(fabric=INFINIBAND_EDR)
    t_e = transfer_time(m_e, sim_e, m_e.nodes[0], m_e.nodes[1], size)
    t_i = transfer_time(m_i, sim_i, m_i.nodes[0], m_i.nodes[1], size)
    assert t_i < t_e / 5  # 10x bandwidth gap, modulo latency


def test_concurrent_transfers_share_sender_nic():
    sim, m = make_machine(n_nodes=3, cores=1, fabric=ETHERNET_10G)
    times = []

    def proc(dst):
        yield WaitEvent(m.transfer(m.nodes[0], dst, 1.25e9))
        times.append(sim.now)

    sim.spawn(proc(m.nodes[1]))
    sim.spawn(proc(m.nodes[2]))
    sim.run()
    # Both flows bottleneck on node0's up-NIC -> ~2s each instead of 1s.
    assert all(t == pytest.approx(2.0, rel=1e-3) for t in times)


def test_uncontended_transfer_time_matches_fabric_math():
    sim, m = make_machine(fabric=INFINIBAND_EDR)
    t = m.uncontended_transfer_time(m.nodes[0], m.nodes[1], 12.5e9)
    assert t == pytest.approx(INFINIBAND_EDR.latency + 1.0)


# -------------------------------------------------------------------- fabrics
def test_fabric_lookup():
    assert fabric_by_name("ethernet") is ETHERNET_10G
    assert fabric_by_name("Infiniband") is INFINIBAND_EDR
    with pytest.raises(KeyError):
        fabric_by_name("carrier-pigeon")


def test_fabric_validation():
    with pytest.raises(ValueError):
        FabricSpec("bad", bandwidth=0, latency=0, cpu_overhead=0, eager_threshold=0)
    with pytest.raises(ValueError):
        FabricSpec("bad", bandwidth=1, latency=-1, cpu_overhead=0, eager_threshold=0)


def test_fabric_with_overrides():
    slow = INFINIBAND_EDR.with_overrides(bandwidth=1e6)
    assert slow.bandwidth == 1e6
    assert slow.latency == INFINIBAND_EDR.latency
    assert INFINIBAND_EDR.bandwidth == 12.5e9  # original untouched


def test_machine_shape_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Machine(sim, 0, 4, ETHERNET_10G)
    with pytest.raises(ValueError):
        Machine(sim, 2, 0, ETHERNET_10G)


def test_oversubscribed_switch_caps_aggregate_bandwidth():
    """4 concurrent node-pair transfers through a 4:1 switch share its
    capacity; with a non-blocking switch they all run at full NIC speed."""
    from repro.simulate import WaitEvent

    def run(factor):
        sim = Simulator()
        m = Machine(sim, 8, 1, ETHERNET_10G, switch_oversubscription=factor)
        times = []

        def proc(src, dst):
            yield WaitEvent(m.transfer(m.nodes[src], m.nodes[dst], 1.25e9))
            times.append(sim.now)

        for i in range(4):
            sim.spawn(proc(i, i + 4))
        sim.run()
        return max(times)

    nonblocking = run(1.0)
    blocked = run(4.0)
    assert nonblocking == pytest.approx(1.0, rel=0.01)
    # 8 NICs / 4 oversubscription = 2 NIC-equivalents of switch capacity
    # shared by 4 flows -> each at half speed.
    assert blocked == pytest.approx(2.0, rel=0.01)


def test_switch_factor_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Machine(sim, 2, 1, ETHERNET_10G, switch_oversubscription=0.5)
