"""Flow-level network tests: serialisation time, sharing, max-min fairness."""

import pytest

from repro.cluster import Network
from repro.simulate import Simulator, Timeout, WaitEvent


def make_net(caps):
    sim = Simulator()
    net = Network(sim)
    links = [net.add_link(f"l{i}", c) for i, c in enumerate(caps)]
    return sim, net, links


def run_flow(sim, net, route, size, latency=0.0):
    done = {}

    def proc():
        yield WaitEvent(net.start_flow(route, size, latency=latency))
        done["t"] = sim.now

    sim.spawn(proc())
    sim.run()
    return done["t"]


def test_single_flow_serialisation_time():
    sim, net, links = make_net([100.0])
    t = run_flow(sim, net, [links[0]], 250.0)
    assert t == pytest.approx(2.5)


def test_latency_added_before_transfer():
    sim, net, links = make_net([100.0])
    t = run_flow(sim, net, [links[0]], 100.0, latency=0.5)
    assert t == pytest.approx(1.5)


def test_zero_byte_flow_costs_latency_only():
    sim, net, links = make_net([100.0])
    t = run_flow(sim, net, [links[0]], 0.0, latency=0.25)
    assert t == pytest.approx(0.25)


def test_two_flows_share_one_link():
    sim, net, links = make_net([100.0])
    times = {}

    def proc(name, size):
        yield WaitEvent(net.start_flow([links[0]], size, label=name))
        times[name] = sim.now

    sim.spawn(proc("a", 100.0))
    sim.spawn(proc("b", 100.0))
    sim.run()
    # Both at 50 B/s -> both finish at t=2.
    assert times["a"] == pytest.approx(2.0)
    assert times["b"] == pytest.approx(2.0)


def test_rate_recovers_after_flow_finishes():
    sim, net, links = make_net([100.0])
    times = {}

    def proc(name, size):
        yield WaitEvent(net.start_flow([links[0]], size, label=name))
        times[name] = sim.now

    sim.spawn(proc("short", 100.0))
    sim.spawn(proc("long", 200.0))
    sim.run()
    # Share 50/50 until short done at t=2 (long has 100 left),
    # long then at 100 B/s -> t=3.
    assert times["short"] == pytest.approx(2.0)
    assert times["long"] == pytest.approx(3.0)


def test_late_flow_slows_running_flow():
    sim, net, links = make_net([100.0])
    times = {}

    def early():
        yield WaitEvent(net.start_flow([links[0]], 200.0, label="early"))
        times["early"] = sim.now

    def late():
        yield Timeout(1.0)
        yield WaitEvent(net.start_flow([links[0]], 50.0, label="late"))
        times["late"] = sim.now

    sim.spawn(early())
    sim.spawn(late())
    sim.run()
    # early: 1s at 100 (100 left), then shares at 50 until late's 50 bytes
    # done at t=2; early then has 50 left at 100 -> t=2.5.
    assert times["late"] == pytest.approx(2.0)
    assert times["early"] == pytest.approx(2.5)


def test_max_min_with_distinct_bottlenecks():
    # Flow A uses links 0+1, flow B uses link 1 only. cap0=30, cap1=100.
    # Progressive filling: link0 offers 30 to A; link1 offers 50 each.
    # Bottleneck is link0 -> A=30; B then gets the rest of link1 = 70.
    sim, net, links = make_net([30.0, 100.0])
    times = {}

    def proc(name, route, size):
        yield WaitEvent(net.start_flow(route, size, label=name))
        times[name] = sim.now

    sim.spawn(proc("a", [links[0], links[1]], 30.0))
    sim.spawn(proc("b", [links[1]], 70.0))
    sim.run()
    assert times["a"] == pytest.approx(1.0)
    assert times["b"] == pytest.approx(1.0)


def test_flow_on_foreign_link_rejected():
    sim1, net1, links1 = make_net([10.0])
    sim2 = Simulator()
    net2 = Network(sim2)
    with pytest.raises(ValueError):
        net2.start_flow([links1[0]], 10.0)


def test_invalid_sizes_rejected():
    sim, net, links = make_net([10.0])
    with pytest.raises(ValueError):
        net.start_flow([links[0]], -1.0)
    with pytest.raises(ValueError):
        net.start_flow([links[0]], 1.0, latency=-0.1)


def test_link_capacity_must_be_positive():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(ValueError):
        net.add_link("bad", 0.0)


def test_bytes_carried_accounting():
    sim, net, links = make_net([100.0])
    run_flow(sim, net, [links[0]], 123.0)
    assert net.bytes_carried == pytest.approx(123.0)


def test_many_flows_through_shared_nic_serialise_fairly():
    sim, net, links = make_net([100.0])
    times = []

    def proc(size):
        yield WaitEvent(net.start_flow([links[0]], size))
        times.append(sim.now)

    for _ in range(4):
        sim.spawn(proc(100.0))
    sim.run()
    # Four equal flows, 25 B/s each -> all finish at t=4.
    assert all(t == pytest.approx(4.0) for t in times)
