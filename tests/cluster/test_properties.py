"""Property-based tests (hypothesis) for the cluster substrate invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ComputeOn, Network, Node
from repro.cluster.network import Flow
from repro.simulate import Simulator


# ---------------------------------------------------------------- max-min
@st.composite
def network_with_flows(draw):
    """A random network plus random flows over subsets of links."""
    sim = Simulator()
    net = Network(sim)
    n_links = draw(st.integers(min_value=1, max_value=6))
    caps = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
            min_size=n_links,
            max_size=n_links,
        )
    )
    links = [net.add_link(f"l{i}", c) for i, c in enumerate(caps)]
    n_flows = draw(st.integers(min_value=1, max_value=12))
    flows = []
    for i in range(n_flows):
        route_idx = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_links - 1),
                min_size=1,
                max_size=n_links,
                unique=True,
            )
        )
        route = [links[j] for j in route_idx]
        f = Flow(route, size=1.0, done=sim.event(), label=f"f{i}")
        net._active.add(f)
        for l in route:
            l.flows.add(f)
        flows.append(f)
    return net, links, flows


@given(network_with_flows())
@settings(max_examples=60, deadline=None)
def test_max_min_allocation_is_feasible(setup):
    """No link carries more than its capacity (within float tolerance)."""
    net, links, flows = setup
    net._max_min_allocate()
    for link in links:
        total = sum(f.rate for f in link.flows)
        assert total <= link.capacity * (1 + 1e-9)


@given(network_with_flows())
@settings(max_examples=60, deadline=None)
def test_max_min_allocation_gives_everyone_positive_rate(setup):
    net, links, flows = setup
    net._max_min_allocate()
    for f in flows:
        assert f.rate > 0


@given(network_with_flows())
@settings(max_examples=60, deadline=None)
def test_max_min_allocation_is_pareto_efficient(setup):
    """Every flow crosses at least one saturated link (can't raise any rate
    without lowering another) — the defining property of max-min."""
    net, links, flows = setup
    net._max_min_allocate()
    saturated = {
        l.link_id
        for l in links
        if sum(f.rate for f in l.flows) >= l.capacity * (1 - 1e-6)
    }
    for f in flows:
        assert any(l.link_id in saturated for l in f.route), (
            f"flow {f.label} crosses no saturated link"
        )


@given(network_with_flows())
@settings(max_examples=40, deadline=None)
def test_max_min_fairness_within_saturated_link(setup):
    """On a saturated link, a flow's rate can only be below the link's
    equal-share if it is limited elsewhere (i.e. rates are max-min)."""
    net, links, flows = setup
    net._max_min_allocate()
    for link in links:
        if not link.flows:
            continue
        rates = sorted(f.rate for f in link.flows)
        # Max-min implies: the largest rate on a saturated link equals the
        # residual fair share; nobody exceeds it by more than tolerance.
        total = sum(rates)
        if total >= link.capacity * (1 - 1e-6):
            max_rate = rates[-1]
            for f in link.flows:
                assert f.rate <= max_rate * (1 + 1e-9)


# ---------------------------------------------------------------- CPU sharing
@given(
    works=st.lists(
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=10,
    ),
    cores=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_cpu_total_time_conserves_work(works, cores):
    """Processor sharing conserves work: makespan >= total_work/cores and
    >= max individual work; and equals max(work) when undersubscribed."""
    sim = Simulator()
    node = Node(sim, 0, cores)
    ends = []

    def proc(w):
        yield ComputeOn(node, w)
        ends.append(sim.now)

    for w in works:
        sim.spawn(proc(w))
    sim.run()
    makespan = max(ends)
    assert makespan >= max(works) * (1 - 1e-9)
    assert makespan >= (sum(works) / cores) * (1 - 1e-9)
    if len(works) <= cores:
        assert makespan == pytest.approx(max(works))


@given(
    works=st.lists(
        st.floats(min_value=0.05, max_value=10.0, allow_nan=False),
        min_size=2,
        max_size=8,
    ),
)
@settings(max_examples=50, deadline=None)
def test_cpu_single_core_makespan_is_total_work(works):
    """With one core, processor sharing finishes everything at sum(works)."""
    sim = Simulator()
    node = Node(sim, 0, 1)
    ends = []

    def proc(w):
        yield ComputeOn(node, w)
        ends.append(sim.now)

    for w in works:
        sim.spawn(proc(w))
    sim.run()
    assert max(ends) == pytest.approx(sum(works), rel=1e-6)


@given(
    works=st.lists(
        st.floats(min_value=0.05, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=6,
    ),
    cores=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_cpu_completion_order_matches_work_order(works, cores):
    """Equal-priority PS: tasks finish in order of their work amounts."""
    sim = Simulator()
    node = Node(sim, 0, cores)
    ends = {}

    def proc(i, w):
        yield ComputeOn(node, w)
        ends[i] = sim.now

    for i, w in enumerate(works):
        sim.spawn(proc(i, w))
    sim.run()
    order_by_end = sorted(range(len(works)), key=lambda i: (ends[i], works[i]))
    order_by_work = sorted(range(len(works)), key=lambda i: (works[i], i))
    # Ends must be monotone in work (ties allowed).
    for a, b in zip(order_by_work, order_by_work[1:]):
        assert ends[a] <= ends[b] * (1 + 1e-9)
