"""FaultInjector semantics against live simulations.

Covers the four event kinds plus the ordering contract of a node crash
(processes die synchronously and survivors observe ``CommFailedError``
rather than a deadlock).
"""

import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.faults import FaultInjector, FaultSchedule
from repro.simulate import SimulationError, Simulator
from repro.smpi import CommFailedError, MpiWorld


def _world(n_nodes=2, cores=2):
    sim = Simulator()
    machine = Machine(sim, n_nodes, cores, ETHERNET_10G)
    world = MpiWorld(machine)
    return sim, machine, world


# ------------------------------------------------------------------- crash
def test_crash_kills_ranks_and_fails_peers():
    sim, machine, world = _world()

    def main(mpi):
        if mpi.rank == 0:
            try:
                yield from mpi.recv(source=1, tag=5)
            except CommFailedError as e:
                return ("failed", tuple(e.dead_gids))
            return "ok"
        yield from mpi.compute(10.0)
        yield from mpi.send("x", dest=0, tag=5)
        return "sent"

    # slots 0..1 on node 0, slots 2..3 on node 1
    res = world.launch(main, slots=[0, 2])
    inj = FaultInjector(FaultSchedule.parse("crash@1.0:node=1"), machine, world).attach()
    sim.run()
    assert machine.nodes[1].failed
    assert not res.procs[1].alive and res.procs[1].state == "killed"
    assert res.procs[0].result == ("failed", (1,))
    assert 1 in world.dead_gids
    assert inj.faults_fired == 1
    assert inj.injected[0][0] == 1.0


def test_crash_uncaught_surfaces_as_failure_not_deadlock():
    sim, machine, world = _world()

    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.recv(source=1, tag=5)
            return "ok"
        yield from mpi.compute(10.0)
        return "computed"

    world.launch(main, slots=[0, 2])
    FaultInjector("crash@1.0:node=1", machine, world).attach()
    with pytest.raises(SimulationError) as err:
        sim.run()
    assert isinstance(err.value.__cause__, CommFailedError)


# --------------------------------------------------------------- straggler
def test_straggler_slows_compute():
    sim, machine, world = _world()

    def main(mpi):
        yield from mpi.compute(2.0)
        return mpi.now

    res = world.launch(main, slots=[0])
    FaultInjector("straggler@1.0:node=0,factor=0.5", machine, world).attach()
    sim.run()
    # 1s at full speed + remaining 1s of work at half speed = 3s total.
    assert res.procs[0].result == pytest.approx(3.0)


# ----------------------------------------------------------------- degrade
def test_degrade_halves_transfer_bandwidth():
    def elapsed_with(spec):
        sim, machine, world = _world()

        def main(mpi):
            if mpi.rank == 0:
                yield from mpi.send(b"x" * (200 * 1024 * 1024), dest=1, tag=1)
            else:
                yield from mpi.recv(source=0, tag=1)
            return mpi.now

        res = world.launch(main, slots=[0, 2])
        if spec:
            FaultInjector(spec, machine, world).attach()
        sim.run()
        return res.procs[1].result

    base = elapsed_with("")
    degraded = elapsed_with("degrade@0:node=0,factor=0.5")
    assert degraded > base * 1.5  # the 200 MiB flow runs at ~half rate


# --------------------------------------------------------------- spawnfail
def test_spawnfail_registers_attempts():
    sim, machine, world = _world()
    FaultInjector("spawnfail:attempt=0;spawnfail:attempt=2", machine, world).attach()
    assert world.fail_spawns == {0, 2}
    assert world.spawn_failure([0]) is not None   # attempt 0 fails
    assert world.spawn_failure([0]) is None       # attempt 1 passes
    assert world.spawn_failure([0]) is not None   # attempt 2 fails


def test_spawn_on_failed_node_fails_regardless_of_schedule():
    sim, machine, world = _world()
    machine.nodes[1].fail()
    err = world.spawn_failure([2])  # slot 2 lives on node 1
    assert err is not None
    assert world.spawn_failure([0]) is None


# ---------------------------------------------------------------- plumbing
def test_attach_is_idempotent_and_registers_hook():
    sim, machine, world = _world()
    inj = FaultInjector("crash@redist+0.5:node=1", machine, world)
    assert inj.attach() is inj.attach()
    assert world.fault_injector is inj
    # relative events pend until the anchor fires
    assert inj.faults_fired == 0
    inj.notify_redist_started(sim.now)
    inj.notify_redist_started(sim.now)  # one-shot
    sim.run()
    assert inj.faults_fired == 1
