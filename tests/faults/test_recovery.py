"""Failure-tolerant reconfiguration: the escalation ladder end to end.

The acceptance matrix of the fault-injection tentpole: a seeded node crash
in the middle of a redistribution (P2P/COL/RMA x Baseline/Merge) must
complete via the recovery ladder — no ``DeadlockError``, no silent partial
results — with ``retries``/``recovery_time`` stamped on the record.  The
toy application's per-iteration invariant (global sum of the variable
vector) makes a mis-recovered dataset fail loudly.
"""

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.faults import FaultInjector, RecoveryPolicy
from repro.malleability import (
    RankOutcome,
    ReconfigConfig,
    ReconfigRequest,
    RunStats,
    run_malleable,
)
from repro.redistribution import FieldSpec
from repro.simulate import Simulator
from repro.smpi import MpiWorld, SpawnModel

N_ROWS = 40
N_ITERS = 12
RECONF_AT = 5


class ToyApp:
    """Per-iteration invariant: sum(x) == sum(x0) + it * n_rows.

    ``blob`` is large enough that the redistribution takes milliseconds of
    simulated time, giving ``redist``-anchored crashes a window to land
    mid-transfer.
    """

    n_iterations = N_ITERS
    n_rows = N_ROWS
    specs = (
        FieldSpec("x", "dense", constant=False),
        FieldSpec("blob", "virtual", constant=True, bytes_per_row=2e6),
    )
    compute_per_iter = 5e-3

    def initial_data(self, lo, hi):
        return {"x": np.arange(lo, hi, dtype=np.float64)}

    def iterate(self, mpi, comm, dataset, iteration):
        yield from mpi.compute(self.compute_per_iter)
        x = dataset.stores["x"].data
        total = yield from mpi.allreduce(float(x.sum()), comm=comm)
        expected = N_ROWS * (N_ROWS - 1) / 2 + iteration * N_ROWS
        assert total == pytest.approx(expected), (
            f"iteration {iteration}: global sum {total} != {expected}"
        )
        x += 1.0

    def on_handoff(self, mpi, dataset):
        assert dataset.stores["x"].data.shape[0] == dataset.hi - dataset.lo


def _entry(mpi, app, config, requests, stats, recovery):
    outcome = yield from run_malleable(
        mpi, app, config, requests, stats, recovery=recovery
    )
    return outcome


def run_faulty_job(config, ns, nt, faults, recovery=None, n_iters=N_ITERS):
    if isinstance(config, str):
        config = ReconfigConfig.parse(config)
    sim = Simulator()
    machine = Machine(sim, n_nodes=4, cores_per_node=2, fabric=ETHERNET_10G)
    world = MpiWorld(
        machine,
        spawn_model=SpawnModel(base=0.01, per_process=0.001, per_node=0.002),
    )
    stats = RunStats()
    app = ToyApp()
    app.n_iterations = n_iters
    requests = [ReconfigRequest(at_iteration=RECONF_AT, n_targets=nt)]
    res = world.launch(
        _entry, slots=range(ns), args=(app, config, requests, stats, recovery)
    )
    inj = FaultInjector(faults, machine, world).attach()
    sim.run()
    return stats, res, sim, inj


def _outcomes(sim, prefix):
    return [p.result for p in sim._processes if p.name.startswith(prefix)]


# ------------------------------------------------- retry: the full S matrix
@pytest.mark.parametrize("redist", ["p2p", "col", "rma"])
@pytest.mark.parametrize("spawn", ["baseline", "merge"])
def test_crash_mid_redistribution_recovers_by_retry(spawn, redist):
    """Node 1 (hosting only *targets*) dies mid-redistribution: the ladder
    terminates the half-built group and respawns on surviving slots."""
    stats, res, sim, inj = run_faulty_job(
        f"{spawn}-{redist}-s", ns=2, nt=4,
        faults="crash@redist+0.002:node=1",
    )
    assert inj.faults_fired == 1
    # The run completed every iteration exactly once despite the crash.
    assert stats.total_iterations() == N_ITERS
    assert stats.finished_at is not None
    rec = stats.last_reconfig
    assert rec.retries >= 1
    assert rec.recovery_policy == "retry"
    assert rec.recovery_time > 0
    assert rec.data_complete_at is not None
    # The final group has the requested size and every member completed.
    assert _outcomes(sim, "spawned").count(RankOutcome.COMPLETED) == (
        4 if spawn == "baseline" else 2
    )


# -------------------------------------------------- retry: injected spawnfail
def test_spawn_failure_is_retried():
    stats, res, sim, inj = run_faulty_job(
        "merge-p2p-s", ns=2, nt=4, faults="spawnfail:attempt=0",
    )
    assert stats.total_iterations() == N_ITERS
    rec = stats.last_reconfig
    assert rec.retries == 1
    assert rec.recovery_policy == "retry"
    assert rec.recovery_time > 0


# ------------------------------------------------------------ shrink fallback
def test_shrink_fallback_when_retries_exhausted():
    """max_retries=0: the first failure escalates straight to shrink —
    the job abandons the reconfiguration and finishes on the sources."""
    stats, res, sim, inj = run_faulty_job(
        "merge-p2p-s", ns=2, nt=4, faults="spawnfail:attempt=0",
        recovery=RecoveryPolicy(max_retries=0, allow_shrink=True),
    )
    assert stats.total_iterations() == N_ITERS
    rec = stats.last_reconfig
    assert rec.recovery_policy == "shrink"
    assert rec.retries == 0
    # Every iteration ran on the original group; nothing was ever spawned
    # successfully.
    assert stats.iterations_by_group == {0: N_ITERS}
    assert [p.result for p in res.procs] == [RankOutcome.COMPLETED] * 2


# ------------------------------------------------------- checkpoint/restart
def test_source_death_degrades_to_checkpoint_restart():
    """Node 1 hosts sources 2-3 of a 4->2 shrink: their death loses
    in-memory state, so survivors requeue the job from the in-run
    checkpoint."""
    stats, res, sim, inj = run_faulty_job(
        "merge-p2p-s", ns=4, nt=2, faults="crash@redist+0.002:node=1",
    )
    rec = stats.reconfigs[0]
    assert rec.recovery_policy == "checkpoint_restart"
    assert rec.recovery_time > 0
    assert stats.finished_at is not None
    # The restarted group re-executed the lost iterations from the in-run
    # checkpoint (iteration 0 for a first-generation group).
    assert stats.iterations_by_group[1] == N_ITERS
    assert stats.total_iterations() >= N_ITERS
    restarted = _outcomes(sim, "restarted")
    assert restarted.count(RankOutcome.COMPLETED) == 2
    # The crashed sources were killed, the survivors were requeued.
    assert all(o is not RankOutcome.COMPLETED for o in [p.result for p in res.procs])


def test_cr_disabled_surfaces_the_failure():
    from repro.simulate import SimulationError
    from repro.smpi import CommFailedError

    with pytest.raises(SimulationError) as err:
        run_faulty_job(
            "merge-p2p-s", ns=4, nt=2, faults="crash@redist+0.002:node=1",
            recovery=RecoveryPolicy(allow_checkpoint_restart=False),
        )
    assert isinstance(err.value.__cause__, CommFailedError)


# ------------------------------------------------------ overlapped strategies
@pytest.mark.parametrize("strategy", ["a", "t"])
def test_overlapped_reconfiguration_recovers(strategy):
    """A/T: the failure is observed at a checkpoint (vote -1 in the stop
    agreement) and recovery falls back to the synchronous ladder."""
    stats, res, sim, inj = run_faulty_job(
        f"merge-p2p-{strategy}", ns=2, nt=4,
        faults="crash@redist+0.002:node=1",
    )
    assert stats.total_iterations() == N_ITERS
    rec = stats.last_reconfig
    assert rec.retries >= 1
    assert rec.recovery_policy == "retry"
    assert stats.finished_at is not None
    assert _outcomes(sim, "spawned").count(RankOutcome.COMPLETED) == 2
