"""FaultSchedule parsing: grammar, validation, canonical stability."""

import pytest

from repro.faults import FaultSchedule


def test_parse_empty_and_none_like():
    assert len(FaultSchedule.parse("")) == 0
    assert len(FaultSchedule.parse("   ")) == 0
    assert not FaultSchedule.parse("")


def test_parse_single_crash():
    sched = FaultSchedule.parse("crash@12.5:node=1")
    (ev,) = sched.events
    assert ev.kind == "crash"
    assert ev.time == 12.5
    assert ev.anchor is None
    assert ev.params == {"node": 1}


def test_parse_multi_event_spec():
    sched = FaultSchedule.parse(
        "crash@5:node=1;degrade@3:node=0,factor=0.25;straggler@2:node=2,factor=0.5"
    )
    assert [ev.kind for ev in sched] == ["crash", "degrade", "straggler"]


def test_parse_redist_anchor():
    sched = FaultSchedule.parse("crash@redist+0.05:node=1")
    (ev,) = sched.events
    assert ev.time is None
    assert ev.anchor == "redist"
    assert ev.delay == 0.05
    ev2 = FaultSchedule.parse("crash@redist:node=0").events[0]
    assert ev2.anchor == "redist" and ev2.delay == 0.0


def test_parse_spawnfail_is_attempt_indexed():
    (ev,) = FaultSchedule.parse("spawnfail:attempt=1").events
    assert ev.kind == "spawnfail"
    assert ev.params == {"attempt": 1}
    # '@time' tolerated for grammar uniformity
    (ev2,) = FaultSchedule.parse("spawnfail@0:attempt=2").events
    assert ev2.params == {"attempt": 2}


def test_canonical_round_trips():
    spec = "crash@redist+0.05:node=1;degrade@3:factor=0.25,node=0;spawnfail:attempt=1"
    sched = FaultSchedule.parse(spec)
    canon = sched.canonical()
    assert FaultSchedule.parse(canon).canonical() == canon


@pytest.mark.parametrize(
    "bad",
    [
        "boom@1:node=0",             # unknown kind
        "crash@1",                   # missing node
        "crash:node=0",              # missing @time for timed kinds
        "crash@-1:node=0",           # negative time
        "crash@redist-1:node=0",     # bad anchor syntax
        "crash@1:node=0.5",          # non-integer node
        "degrade@1:node=0",          # missing factor
        "degrade@1:node=0,factor=0", # factor must be > 0
        "straggler@1:node=0,factor=2",  # straggler can only slow down
        "crash@1:node=0,bogus=3",    # unknown parameter
        "crash@x:node=0",            # unparsable time
        "crash@1:node",              # malformed params
    ],
)
def test_rejects_bad_specs(bad):
    with pytest.raises(ValueError):
        FaultSchedule.parse(bad)
