"""``REPRO_BATCH=1`` vs ``=0``: the batch lane is invisible in artifacts.

The vectorized batch lane (timer wheel + bulk delivery + compiled plans)
ships on by default with a scalar fallback kept for bisection.  Its
contract is byte-identity: the full 18-config sweep serializes to the
same CSV bytes — sequentially, over the worker fleet, and replayed from
the cell cache — and the aggregated metrics document exports the same
JSON bytes, whichever lane ran the simulation.
"""

from __future__ import annotations

import pytest

from repro.harness import shutdown_fleet
from repro.harness.runner import run_sweep
from repro.malleability.config import ALL_CONFIGS

KEYS = [c.key for c in ALL_CONFIGS]
PAIRS = [(4, 2), (2, 4)]


def _sweep_csv(lane: str, **kwargs) -> str:
    """One 18-config sweep with the lane pinned via REPRO_BATCH."""
    mp = pytest.MonkeyPatch()
    try:
        mp.setenv("REPRO_BATCH", lane)
        rs = run_sweep(
            PAIRS, KEYS, ["ethernet"], scale="tiny", repetitions=1, **kwargs
        )
        return rs.to_csv()
    finally:
        mp.undo()


@pytest.fixture(scope="module")
def scalar_csv():
    """The scalar-lane sequential reference sweep."""
    return _sweep_csv("0")


def test_batch_sequential_matches_scalar(scalar_csv):
    assert _sweep_csv("1") == scalar_csv


def test_batch_fleet_matches_scalar(scalar_csv):
    # Workers inherit the environment at spawn: recycle the fleet so its
    # processes are born with the batch lane pinned on.
    shutdown_fleet()
    try:
        assert _sweep_csv("1", workers=2) == scalar_csv
    finally:
        shutdown_fleet()


def test_batch_cached_replay_matches_scalar(scalar_csv, tmp_path):
    cache = tmp_path / "cells"
    assert _sweep_csv("1", cache=cache) == scalar_csv      # fresh, batch lane
    assert _sweep_csv("0", cache=cache) == scalar_csv      # replay, scalar lane
    assert _sweep_csv("1", cache=cache) == scalar_csv      # replay, batch lane


def test_metrics_json_identical_across_lanes(tmp_path):
    # The aggregated obs metrics document — counters, histograms, spans —
    # must serialize to identical bytes under either lane.  Each lane runs
    # in a fresh subprocess: some observability labels embed process-global
    # allocation counters (e.g. window ids), so only run-per-process
    # comparisons are meaningful — which is also how CI compares them.
    import os
    import subprocess
    import sys

    docs = {}
    for lane in ("1", "0"):
        out = tmp_path / f"results-{lane}.csv"
        metrics = tmp_path / f"metrics-{lane}.json"
        env = dict(os.environ, REPRO_BATCH=lane)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        subprocess.run(
            [sys.executable, "-c",
             "import sys; from repro.harness.cli import main; "
             "sys.exit(main(sys.argv[1:]))",
             "run", "--scale", "tiny", "--figures", "fig2", "--reps", "1",
             "--no-cache", "--out", str(out),
             "--metrics-out", str(metrics)],
            check=True, env=env,
        )
        docs[lane] = (out.read_bytes(), metrics.read_bytes())
    assert docs["1"] == docs["0"]
