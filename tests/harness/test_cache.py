"""Deterministic cell-result cache: identity, invalidation, robustness.

The headline contract: a cached sweep's CSV and merged metrics document
are **byte-identical** to a fresh run's, because cache entries replay the
exact wire scalars and metrics documents a fresh cell produces (JSON
round-trips Python floats exactly).  The rest is invalidation hygiene:
any change to the spec, the base workload, the metrics schema or the
cache version must miss rather than serve a stale entry, and corrupt
entries must degrade to misses.
"""

import dataclasses
import json

from repro.harness import CellCache, run_sweep
from repro.harness.cache import CACHE_VERSION
from repro.harness.runner import RunSpec
from repro.obs import MetricsRegistry
from repro.synthetic.presets import cg_emulation_config

PAIRS = [(2, 4)]
KEYS = ["merge-p2p-t", "baseline-p2p-s"]
FABRICS = ["ethernet"]
GRID = dict(scale="tiny", repetitions=1)


def _sweep(cache, metrics=None, **kw):
    return run_sweep(
        PAIRS, KEYS, FABRICS, cache=cache, metrics=metrics, **GRID, **kw
    )


# ------------------------------------------------------------- byte identity
def test_cached_sweep_is_byte_identical(tmp_path):
    cache = CellCache(tmp_path)
    m_cold, m_warm = MetricsRegistry(), MetricsRegistry()
    cold = _sweep(cache, metrics=m_cold)
    assert cache.misses == len(cold.results) and cache.hits == 0
    warm = _sweep(cache, metrics=m_warm)
    assert cache.hits == len(cold.results)  # second pass: all hits
    assert cold.to_csv() == warm.to_csv()
    assert m_cold.to_dict() == m_warm.to_dict()
    # and both match a cacheless run
    plain = run_sweep(PAIRS, KEYS, FABRICS, **GRID)
    assert plain.to_csv() == warm.to_csv()


def test_parallel_fill_then_sequential_replay(tmp_path):
    cache = CellCache(tmp_path)
    par = run_sweep(
        PAIRS, KEYS, FABRICS, cache=cache, workers=2, **GRID
    )
    replay = _sweep(cache)
    assert par.to_csv() == replay.to_csv()
    assert cache.hit_rate > 0


def test_cache_accepts_a_path(tmp_path):
    a = _sweep(tmp_path / "c")
    b = _sweep(str(tmp_path / "c"))
    assert a.to_csv() == b.to_csv()
    assert list((tmp_path / "c").glob("*.json"))


# -------------------------------------------------------------- invalidation
def test_progress_counts_cache_hits(tmp_path):
    cache = CellCache(tmp_path)
    _sweep(cache)
    msgs: list = []
    _sweep(cache, progress=msgs.append)
    total = len(PAIRS) * len(KEYS) * len(FABRICS)
    assert len(msgs) == total
    counts = [int(m.split("/")[0].lstrip("[")) for m in msgs]
    assert counts == list(range(1, total + 1))


def test_token_covers_every_spec_axis():
    base = cg_emulation_config("tiny")
    spec = RunSpec(2, 4, "merge-p2p-t", "ethernet", "tiny", 0)
    tok = CellCache.token(spec, base, True)
    for other in (
        RunSpec(4, 4, "merge-p2p-t", "ethernet", "tiny", 0),
        RunSpec(2, 8, "merge-p2p-t", "ethernet", "tiny", 0),
        RunSpec(2, 4, "merge-col-s", "ethernet", "tiny", 0),
        RunSpec(2, 4, "merge-p2p-t", "infiniband", "tiny", 0),
        RunSpec(2, 4, "merge-p2p-t", "ethernet", "small", 0),
        RunSpec(2, 4, "merge-p2p-t", "ethernet", "tiny", 1),
        RunSpec(2, 4, "merge-p2p-t", "ethernet", "tiny", 0,
                plan_mode="minmove"),
        RunSpec(2, 4, "merge-p2p-t", "ethernet", "tiny", 0,
                faults="spawnfail:attempt=0"),
    ):
        assert CellCache.token(other, base, True) != tok
    # metrics-requested flag and workload edits invalidate too
    assert CellCache.token(spec, base, False) != tok
    edited = dataclasses.replace(base, iterations=base.iterations + 1)
    assert CellCache.token(spec, edited, True) != tok


def test_metrics_entries_do_not_serve_plain_runs(tmp_path):
    cache = CellCache(tmp_path)
    _sweep(cache, metrics=MetricsRegistry())
    cache.hits = cache.misses = 0
    _sweep(cache)  # no metrics requested: must not hit metrics entries
    assert cache.hits == 0


def test_stale_version_is_a_miss(tmp_path):
    cache = CellCache(tmp_path)
    base = cg_emulation_config("tiny")
    spec = RunSpec(2, 4, "merge-p2p-t", "ethernet", "tiny", 0)
    cache.put(spec, base, False, (0.0,) * 13, None)
    assert cache.get(spec, base, False) is not None
    # simulate an entry written by an older cache format
    (entry,) = cache.root.glob("*.json")
    doc = json.loads(entry.read_text())
    doc["v"] = CACHE_VERSION - 1
    entry.write_text(json.dumps(doc))
    assert cache.get(spec, base, False) is None


def test_corrupt_entries_degrade_to_misses(tmp_path):
    cache = CellCache(tmp_path)
    base = cg_emulation_config("tiny")
    spec = RunSpec(2, 4, "merge-p2p-t", "ethernet", "tiny", 0)
    cache.put(spec, base, False, (0.0,) * 13, None)
    (entry,) = cache.root.glob("*.json")
    for garbage in ("", "{not json", '{"v": 1}', '["wrong shape"]'):
        entry.write_text(garbage)
        assert cache.get(spec, base, False) is None
    # a recovered write repairs the entry
    cache.put(spec, base, False, (1.0,) * 13, None)
    wire, doc = cache.get(spec, base, False)
    assert wire == (1.0,) * 13 and doc is None


def test_sanitized_sweeps_bypass_the_cache(tmp_path):
    cache = CellCache(tmp_path)
    _sweep(cache, sanitize=True)
    assert cache.hits == 0 and cache.misses == 0
    assert not list(cache.root.glob("*.json"))  # nothing was written
