"""Config-object API: RunSpec/RunResult carry ReconfigConfig, the old
``config_key`` kwarg/property is gone (only the CSV column keeps the
name), and sweeps aggregate metrics deterministically."""

import json
import pickle
import warnings

import pytest

from repro.harness import ResultSet, RunResult, RunSpec, run_one, run_sweep
from repro.malleability import ReconfigConfig
from repro.obs import MetricsRegistry, validate_metrics


CFG = ReconfigConfig.parse("merge-col-s")


def test_runspec_accepts_config_object():
    spec = RunSpec(2, 4, CFG, "ethernet", "tiny", rep=0)
    assert spec.config is CFG


@pytest.mark.parametrize("text", ["merge-col-s", "Merge COLS", "MERGE_COL_S"])
def test_runspec_parses_config_strings(text):
    spec = RunSpec(2, 4, text, "ethernet", "tiny", rep=0)
    assert spec.config == CFG


def test_config_key_surface_is_gone():
    """Migration happened: the kwarg and the property were removed.  Spell
    the string ``spec.config.key``; only the CSV column keeps the name."""
    with pytest.raises(TypeError):
        RunSpec(2, 4, fabric="ethernet", scale="tiny",
                config_key="merge-col-s")
    with pytest.raises(TypeError):
        RunResult(2, 4, fabric="ethernet", scale="tiny",
                  config_key="merge-col-s")
    spec = RunSpec(2, 4, CFG, "ethernet", "tiny", rep=0)
    with pytest.raises(AttributeError):
        spec.config_key
    assert spec.config.key == "merge-col-s"


def test_config_required():
    with pytest.raises(TypeError):
        RunSpec(2, 4, fabric="ethernet", scale="tiny")


def test_runresult_roundtrips_without_warnings(recwarn):
    warnings.simplefilter("error", DeprecationWarning)
    r = RunResult(2, 4, CFG, "ethernet", "tiny", 0,
                  reconfig_time=1.0, app_time=2.0)
    assert r.config.key == "merge-col-s"
    rs = ResultSet([r])
    assert rs.configs() == [CFG]
    assert rs.config_keys() == ["merge-col-s"]  # no warning: internal access


def test_specs_and_results_pickle():
    spec = RunSpec(2, 4, CFG, "ethernet", "tiny", rep=1)
    assert pickle.loads(pickle.dumps(spec)) == spec
    r = RunResult(2, 4, CFG, "ethernet", "tiny", 0, app_time=1.5)
    assert pickle.loads(pickle.dumps(r)) == r


def test_resultset_select_accepts_config_objects(tmp_path):
    r = RunResult(2, 4, CFG, "ethernet", "tiny", 0, reconfig_time=0.5)
    rs = ResultSet([r])
    assert rs.select(config_key=CFG) == rs.select(config_key="merge-col-s")
    assert len(rs.select(config_key=CFG)) == 1
    # CSV roundtrip keeps the breakdown columns and the config object
    path = tmp_path / "r.csv"
    rs.to_csv(path)
    back = ResultSet.from_csv(path)
    assert back.results[0].config == CFG
    assert back.results[0].redist_time == r.redist_time


def test_run_one_populates_breakdown_columns():
    spec = RunSpec(2, 4, "merge-col-t", "ethernet", "tiny", rep=0)
    r = run_one(spec)
    assert r.redist_time > 0
    assert r.redist_bytes > 0
    assert r.peak_oversubscription > 0
    assert r.spawn_time > 0
    # stages never exceed the whole reconfiguration
    assert r.redist_time <= r.reconfig_time + 1e-9
    assert r.commit_time >= 0


def test_sweep_metrics_sequential_parallel_identical():
    kwargs = dict(
        pairs=[(2, 4)],
        config_keys=["merge-col-s", CFG],  # strings and objects both accepted
        fabrics=["ethernet"],
        scale="tiny",
        repetitions=1,
    )
    seq_reg = MetricsRegistry()
    seq = run_sweep(metrics=seq_reg, **kwargs)
    par_reg = MetricsRegistry()
    par = run_sweep(metrics=par_reg, workers=2, **kwargs)
    assert seq.results == par.results
    a = json.dumps(seq_reg.to_dict(), sort_keys=True)
    b = json.dumps(par_reg.to_dict(), sort_keys=True)
    assert a == b
    validate_metrics(seq_reg.to_dict())
    # the sweep recorded one breakdown row per cell
    assert len(seq_reg.records["reconfigurations"]) == len(seq.results)
