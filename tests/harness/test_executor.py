"""Chunked pool executor: worker resolution, chunking, wire format, errors.

Contracts under test (see ``repro.harness.executor``):

* ``resolve_workers`` — the sequential-fallback guard (``workers=1``,
  ``workers=0``, ``workers > n_cells``) and the ``"auto"`` spelling;
* ``make_chunks`` — every pending index lands in exactly one chunk, odd
  remainders included, chunk sizes balanced to within one;
* the 13-scalar wire format is lossless (``wire_to_result`` inverts
  ``result_to_wire`` given the spec);
* a cell failing inside a chunk surfaces as :class:`SweepCellError` with
  the cell's provenance and grid index, picklable across the pool;
* sanitized and faulted sweeps stay byte-identical between sequential
  and chunked-parallel execution.
"""

import pickle

import pytest

from repro.harness import SweepCellError, resolve_workers, run_sweep
from repro.harness.executor import (
    WIRE_FIELDS,
    make_chunks,
    result_to_wire,
    run_parallel,
    wire_to_result,
)
from repro.harness.runner import RunSpec, run_one
from repro.synthetic.presets import cg_emulation_config

PAIRS = [(2, 4), (4, 8)]
KEYS = ["merge-p2p-t", "baseline-p2p-s"]
FABRICS = ["ethernet"]


# ---------------------------------------------------------- worker resolution
@pytest.mark.parametrize("workers", [None, 0, 1])
def test_sequential_spellings_resolve_to_none(workers):
    assert resolve_workers(workers, 10) is None


def test_more_workers_than_cells_falls_back_to_sequential():
    assert resolve_workers(11, 10) is None
    assert resolve_workers(10, 10) == 10
    assert resolve_workers(2, 10) == 2


def test_auto_clamps_to_cpu_count_and_cells():
    import os

    cpus = os.cpu_count() or 1
    want = min(cpus, 4)
    assert resolve_workers("auto", 4) == (want if want > 1 else None)
    # one cell can never go parallel
    assert resolve_workers("auto", 1) is None


def test_bad_workers_values_raise():
    with pytest.raises(ValueError):
        resolve_workers("turbo", 10)
    with pytest.raises(ValueError):
        resolve_workers(-2, 10)


def test_run_sweep_oversized_workers_never_opens_a_pool(monkeypatch):
    """workers > cells must take the sequential path, not a clamped pool."""
    import repro.harness.executor as executor

    def _boom(*a, **k):  # pragma: no cover - failure path
        raise AssertionError("pool opened despite oversized workers")

    monkeypatch.setattr(executor, "run_parallel", _boom)
    seq = run_sweep(PAIRS, KEYS, FABRICS, scale="tiny", repetitions=1)
    big = run_sweep(
        PAIRS, KEYS, FABRICS, scale="tiny", repetitions=1, workers=999
    )
    assert seq.to_csv() == big.to_csv()


# ------------------------------------------------------------------- chunking
@pytest.mark.parametrize(
    "n,workers", [(1, 2), (5, 2), (7, 2), (8, 2), (9, 2), (17, 3), (100, 4)]
)
def test_chunks_partition_indices_exactly(n, workers):
    indices = list(range(n))
    chunks = make_chunks(indices, workers)
    flat = sorted(i for c in chunks for i in c)
    assert flat == indices  # every cell exactly once, remainders included
    assert len(chunks) == min(n, workers * 4)
    sizes = [len(c) for c in chunks]
    assert max(sizes) - min(sizes) <= 1  # balanced to within one


def test_chunks_of_nothing():
    assert make_chunks([], 4) == []


# ---------------------------------------------------------------- wire format
def test_wire_round_trip_is_lossless():
    spec = RunSpec(2, 4, "merge-p2p-t", "ethernet", "tiny", 0)
    result = run_one(spec)
    wire = result_to_wire(result)
    assert len(wire) == len(WIRE_FIELDS) == 13
    assert wire_to_result(spec, wire) == result


def test_wire_round_trip_survives_json():
    """The cache stores wire tuples as JSON; floats must round-trip."""
    import json

    spec = RunSpec(4, 8, "baseline-col-a", "infiniband", "tiny", 1)
    result = run_one(spec)
    wire = tuple(json.loads(json.dumps(list(result_to_wire(result)))))
    assert wire_to_result(spec, wire) == result


# ------------------------------------------------------------ error handling
def test_sweep_cell_error_pickles_with_provenance():
    err = SweepCellError("ethernet:2->4:merge-p2p-t:rep0", 3, "ValueError: x")
    clone = pickle.loads(pickle.dumps(err))
    assert clone.cell == err.cell
    assert clone.index == 3
    assert clone.cell_message == "ValueError: x"
    assert "ethernet:2->4:merge-p2p-t:rep0" in str(clone)
    assert "grid index 3" in str(clone)


def test_mid_chunk_failure_names_the_cell():
    """A worker raising partway through a chunk keeps cell provenance."""
    good = RunSpec(2, 4, "merge-p2p-t", "ethernet", "tiny", 0)
    bad = RunSpec(
        2, 4, "merge-p2p-t", "ethernet", "tiny", 1, plan_mode="bogus"
    )
    specs = [good, bad]
    base = cg_emulation_config("tiny")
    wires, docs, found = [None, None], [None, None], [None, None]
    with pytest.raises(SweepCellError) as info:
        run_parallel(
            specs, base, 2, [0, 1], wires, docs, found,
            with_metrics=False, sanitize=False, progress=None,
            total=2, done=0, started=0.0,
        )
    assert info.value.cell == "ethernet:2->4:merge-p2p-t:rep1"
    assert info.value.index == 1
    assert "bogus" in info.value.cell_message


# ----------------------------------------------------- parallel byte identity
def test_sanitized_sweep_identical_seq_vs_parallel():
    kw = dict(scale="tiny", repetitions=1, sanitize=True)
    seq = run_sweep(PAIRS, KEYS, FABRICS, **kw)
    par = run_sweep(PAIRS, KEYS, FABRICS, workers=2, **kw)
    assert seq.to_csv() == par.to_csv()


def test_faulted_sweep_identical_seq_vs_parallel():
    # Same recoverable crash grid as test_faults_sweep: the ladder handles
    # the node-1 crash for the synchronous p2p configs on the 2->4 pair.
    kw = dict(
        scale="tiny", repetitions=2, faults="crash@redist+0.002:node=1"
    )
    keys = ["baseline-p2p-s", "merge-p2p-s"]
    seq = run_sweep([(2, 4)], keys, FABRICS, **kw)
    par = run_sweep([(2, 4)], keys, FABRICS, workers=2, **kw)
    assert seq.to_csv() == par.to_csv()
    assert all(r.faults for r in par.results)
