"""EXPERIMENTS.md generation from sweep data."""

import pytest

from repro.harness import ResultSet, evaluate_claims, experiments_markdown, run_sweep
from repro.malleability import ALL_CONFIGS
from repro.synthetic.presets import SCALES


@pytest.fixture(scope="module")
def grid_sweep():
    """Full tiny grid, 1 rep (claims need every figure's cells)."""
    preset = SCALES["tiny"]
    return run_sweep(
        preset.pairs(),
        [c.key for c in ALL_CONFIGS],
        ["ethernet", "infiniband"],
        scale="tiny",
        repetitions=1,
    )


def test_claims_cover_every_figure(grid_sweep):
    claims = evaluate_claims(grid_sweep, "tiny")
    figures = {c.figure for c in claims}
    for i in range(2, 10):
        assert any(f"Figure {i}" in f or f"{i}" in f for f in figures), i
    # The core orderings must hold even on a single-rep sweep.
    by_paper = {c.paper: c for c in claims}
    assert by_paper[
        "Merge reconfigurations outperform Baseline (ethernet)"
    ].holds
    assert by_paper[
        "Infiniband reconfigures faster than Ethernet across the board"
    ].holds


def test_markdown_structure(grid_sweep):
    text = experiments_markdown(grid_sweep, "tiny")
    assert text.startswith("# EXPERIMENTS")
    assert "| figure | paper claim | measured | verdict |" in text
    assert "Headline numbers" in text
    assert "1.14x" in text and "1.21x" in text
    assert "PASS" in text


def test_markdown_extra_sections(grid_sweep):
    text = experiments_markdown(grid_sweep, "tiny", extra_sections="## Custom\nbody")
    assert text.rstrip().endswith("body")


def test_cli_experiments_md(grid_sweep, tmp_path, capsys):
    from repro.harness.cli import main as cli_main

    csv = tmp_path / "r.csv"
    grid_sweep.to_csv(csv)
    out = tmp_path / "EXP.md"
    code = cli_main([
        "experiments-md", "--results", str(csv), "--scale", "tiny",
        "--out", str(out),
    ])
    assert code == 0
    assert out.read_text().startswith("# EXPERIMENTS")
