"""Faulted sweeps through the harness: CSV columns and determinism.

The acceptance bar of the fault-injection tentpole at the harness layer: a
seeded crash sweep completes via the recovery ladder, stamps ``faults`` /
``retries`` / ``recovery_time`` into the CSV, and serializes byte-identically
whether executed sequentially or across the process pool.
"""

import pytest

from repro.harness import ResultSet, RunSpec, run_one, run_sweep, sweep_specs
from repro.harness.cli import main as cli_main

CRASH = "crash@redist+0.002:node=1"


@pytest.fixture(scope="module")
def faulty_sweep():
    """2->4 crash sweep over both spawn methods (module-cached)."""
    return run_sweep(
        pairs=[(2, 4)],
        config_keys=["baseline-p2p-s", "merge-p2p-s"],
        fabrics=["ethernet"],
        scale="tiny",
        repetitions=2,
        faults=CRASH,
    )


def test_spec_canonicalizes_and_validates_faults():
    spec = RunSpec(2, 4, "merge-p2p-s", "ethernet", "tiny", faults=CRASH)
    assert spec.faults == CRASH
    assert RunSpec(2, 4, "merge-p2p-s", "ethernet", "tiny").faults == ""
    with pytest.raises(ValueError):
        RunSpec(2, 4, "merge-p2p-s", "ethernet", "tiny", faults="boom@1:node=0")


def test_faulted_run_recovers_and_stamps_columns():
    spec = RunSpec(2, 4, "merge-p2p-s", "ethernet", "tiny", faults=CRASH)
    res = run_one(spec)
    assert res.faults == CRASH
    assert res.retries >= 1
    assert res.recovery_time > 0
    # The run still completed every iteration despite the crash.
    clean = run_one(RunSpec(2, 4, "merge-p2p-s", "ethernet", "tiny"))
    assert res.total_iterations == clean.total_iterations
    assert clean.faults == "" and clean.retries == 0
    assert clean.recovery_time == 0.0


def test_fault_spec_changes_the_seed_only_when_set():
    from repro.harness.runner import _seed_of

    base = RunSpec(2, 4, "merge-p2p-s", "ethernet", "tiny")
    faulted = RunSpec(2, 4, "merge-p2p-s", "ethernet", "tiny", faults=CRASH)
    assert _seed_of(base) != _seed_of(faulted)
    assert _seed_of(base) == _seed_of(
        RunSpec(2, 4, "merge-p2p-s", "ethernet", "tiny", faults="")
    )


def test_sweep_specs_thread_the_fault_schedule():
    specs = sweep_specs(
        [(2, 4)], ["merge-p2p-s"], ["ethernet"], "tiny", 2, faults=CRASH
    )
    assert [s.faults for s in specs] == [CRASH, CRASH]


def test_csv_round_trips_fault_columns(faulty_sweep):
    text = faulty_sweep.to_csv()
    header = text.splitlines()[0]
    for col in ("faults", "retries", "recovery_time"):
        assert col in header.split(",")
    again = ResultSet.from_csv(text)
    assert again.to_csv() == text
    assert all(r.faults == CRASH for r in again.results)
    assert all(r.retries >= 1 for r in again.results)


def test_old_csv_without_fault_columns_still_loads():
    text = (
        "ns,nt,config_key,fabric,scale,rep,reconfig_time,app_time,"
        "spawn_time,overlapped_iterations,total_iterations\n"
        "2,4,merge-p2p-s,ethernet,tiny,0,0.1,1.0,0.05,0,30\n"
    )
    (r,) = ResultSet.from_csv(text).results
    assert r.faults == "" and r.retries == 0 and r.recovery_time == 0.0


def test_parallel_faulted_sweep_is_bit_identical(faulty_sweep):
    parallel = run_sweep(
        pairs=[(2, 4)],
        config_keys=["baseline-p2p-s", "merge-p2p-s"],
        fabrics=["ethernet"],
        scale="tiny",
        repetitions=2,
        faults=CRASH,
        workers=2,
    )
    assert parallel.to_csv() == faulty_sweep.to_csv()


def test_cli_run_accepts_faults(tmp_path):
    out = tmp_path / "faulty.csv"
    rc = cli_main(
        [
            "run", "--scale", "tiny", "--figures", "fig2",
            "--reps", "1", "--out", str(out), "--faults", CRASH,
        ]
    )
    assert rc == 0
    rs = ResultSet.from_csv(out)
    assert rs.results and all(r.faults == CRASH for r in rs.results)
