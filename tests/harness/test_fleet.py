"""Lifecycle of the persistent worker fleet (PR 6).

The fleet contract: workers are spawned once per base-config fingerprint
and serve many ``run_sweep`` calls; results stream back through
shared-memory rings (or the pickle queue lane) byte-identically; failure
— a cell raising or a worker dying — surfaces as
:class:`~repro.harness.executor.SweepCellError` with cell provenance
while the fleet itself stays usable; shutdown unlinks every shm segment.
"""

import dataclasses
import os

import pytest

from repro.harness.executor import SweepCellError
from repro.harness.fleet import (
    WorkerFleet,
    active_fleet,
    fleet_fingerprint,
    get_fleet,
    shutdown_fleet,
)
from repro.harness.runner import run_sweep, sweep_specs
from repro.synthetic.presets import cg_emulation_config

PAIRS = [(2, 4), (4, 8)]
KEYS = ["merge-p2p-t", "baseline-p2p-s"]
FABRICS = ["ethernet"]
GRID = dict(scale="tiny", repetitions=1)


@pytest.fixture(autouse=True)
def _fresh_fleet():
    """Every test starts and ends without a live fleet (and without
    leaked workers or shm segments from a failed assertion)."""
    shutdown_fleet()
    yield
    shutdown_fleet()


def _worker_pids(fleet: WorkerFleet) -> list[int]:
    return [w.process.pid for w in fleet._workers]


def test_fleet_survives_across_run_sweep_calls_with_identical_csv():
    seq = run_sweep(PAIRS, KEYS, FABRICS, **GRID)

    first = run_sweep(PAIRS, KEYS, FABRICS, workers=2, **GRID)
    fleet = active_fleet()
    assert fleet is not None
    pids = _worker_pids(fleet)

    second = run_sweep(PAIRS, KEYS, FABRICS, workers=2, **GRID)
    # Same fleet object, same worker processes: no respawn in between.
    assert active_fleet() is fleet
    assert _worker_pids(fleet) == pids
    assert fleet.sweeps_served == 2
    assert fleet.metrics.counter("fleet.worker_reuse").value == 2

    assert seq.to_csv() == first.to_csv() == second.to_csv()


def test_changed_base_config_reinitializes_the_fleet():
    base_a = cg_emulation_config("tiny")
    base_b = dataclasses.replace(base_a, iterations=base_a.iterations + 1)
    assert fleet_fingerprint(base_a) != fleet_fingerprint(base_b)

    fleet_a = get_fleet(base_a, 2)
    assert get_fleet(base_a, 2) is fleet_a  # same base: reuse
    fleet_b = get_fleet(base_b, 2)
    assert fleet_b is not fleet_a  # new base: fresh workers
    assert fleet_a._closed  # and the old fleet was shut down
    assert active_fleet() is fleet_b


def test_worker_death_surfaces_as_sweep_cell_error_with_provenance():
    specs = sweep_specs(PAIRS, KEYS, FABRICS, "tiny", 1)
    fleet = get_fleet(cg_emulation_config("tiny"), 2)
    for w in fleet._workers:
        w.process.kill()
        w.process.join()
    with pytest.raises(SweepCellError) as exc_info:
        list(fleet.run_cells(specs, list(range(len(specs))), False, False))
    err = exc_info.value
    assert "died" in err.cell_message
    # Provenance: the error names a real cell of this sweep and its index.
    assert 0 <= err.index < len(specs)
    spec = specs[err.index]
    assert err.cell == (
        f"{spec.fabric}:{spec.ns}->{spec.nt}:{spec.config.key}:rep{spec.rep}"
    )
    # The registry heals the fleet: the next get_fleet respawns the dead
    # workers and the fleet serves a full sweep again.
    healed = get_fleet(cg_emulation_config("tiny"), 2)
    assert healed is fleet
    assert all(w.process.is_alive() for w in healed._workers)
    got = list(healed.run_cells(specs, list(range(len(specs))), False, False))
    assert sorted(i for i, *_ in got) == list(range(len(specs)))


def test_failing_cell_streams_back_as_sweep_cell_error():
    # An unknown fabric name makes run_cell raise inside the worker.
    specs = sweep_specs(PAIRS, KEYS, ["ethernet"], "tiny", 1)
    bad = sweep_specs([(2, 4)], KEYS[:1], ["no-such-fabric"], "tiny", 1)
    fleet = get_fleet(cg_emulation_config("tiny"), 2)
    with pytest.raises(SweepCellError) as exc_info:
        list(fleet.run_cells(bad, [0], False, False))
    assert exc_info.value.index == 0
    assert "no-such-fabric" in exc_info.value.cell
    # The worker survived the failing cell and serves the next sweep.
    assert all(w.process.is_alive() for w in fleet._workers)
    got = list(fleet.run_cells(specs, list(range(len(specs))), False, False))
    assert sorted(i for i, *_ in got) == list(range(len(specs)))


def test_shutdown_unlinks_all_shared_memory_segments():
    fleet = get_fleet(cg_emulation_config("tiny"), 2)
    names = [w.ring.shm.name for w in fleet._workers]
    assert all(os.path.exists(f"/dev/shm/{n}") for n in names)
    shutdown_fleet()
    assert active_fleet() is None
    assert not any(os.path.exists(f"/dev/shm/{n}") for n in names)
    assert not any(w.process.is_alive() for w in fleet._workers)


def test_pickle_wire_lane_is_byte_identical():
    seq = run_sweep(PAIRS, KEYS, FABRICS, **GRID)
    shm = run_sweep(PAIRS, KEYS, FABRICS, workers=2, wire="shm", **GRID)
    assert active_fleet().wire == "shm"
    pik = run_sweep(PAIRS, KEYS, FABRICS, workers=2, wire="pickle", **GRID)
    fleet = active_fleet()
    assert fleet.wire == "pickle"
    assert all(w.ring is None for w in fleet._workers)  # queue lane
    assert seq.to_csv() == shm.to_csv() == pik.to_csv()


def test_wire_env_variable_selects_the_lane(monkeypatch):
    monkeypatch.setenv("REPRO_WIRE", "pickle")
    fleet = get_fleet(cg_emulation_config("tiny"), 2)
    assert fleet.wire == "pickle"
    monkeypatch.setenv("REPRO_WIRE", "shm")
    other = get_fleet(cg_emulation_config("tiny"), 2)
    assert other is not fleet and other.wire == "shm"


def test_metrics_merge_is_identical_between_sequential_and_fleet():
    from repro.obs import MetricsRegistry

    seq_reg, par_reg = MetricsRegistry(), MetricsRegistry()
    run_sweep(PAIRS, KEYS, FABRICS, metrics=seq_reg, **GRID)
    run_sweep(PAIRS, KEYS, FABRICS, metrics=par_reg, workers=2, **GRID)
    assert seq_reg.to_dict() == par_reg.to_dict()
    # Fleet telemetry stays in the fleet-owned registry, never in the
    # sweep aggregate (byte-identity would break otherwise).
    assert not any(k.startswith("fleet.") for k in par_reg.counters)
    assert active_fleet().metrics.counter("fleet.cells_streamed").value > 0
