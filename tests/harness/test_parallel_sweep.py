"""Determinism of the parallel sweep executor.

The contract introduced in PR 1: ``run_sweep(..., workers=N)`` must be
*bit-identical* to the sequential sweep — same ResultSet rows in the same
canonical order, serializing to the same CSV bytes — because each cell's
simulation is seeded deterministically (`_seed_of`) and its outcome is
independent of process history.
"""

import zlib

from repro.harness.runner import RunSpec, run_one, run_sweep, sweep_specs
from repro.harness.runner import _seed_of

PAIRS = [(2, 4), (4, 8)]
KEYS = ["merge-p2p-t", "baseline-p2p-s"]
FABRICS = ["ethernet"]


def test_parallel_sweep_csv_bytes_identical_to_sequential():
    seq = run_sweep(PAIRS, KEYS, FABRICS, scale="tiny", repetitions=1)
    par = run_sweep(
        PAIRS, KEYS, FABRICS, scale="tiny", repetitions=1, workers=2
    )
    assert seq.to_csv() == par.to_csv()


def test_parallel_progress_counts_every_cell():
    msgs = []
    run_sweep(
        PAIRS,
        KEYS,
        FABRICS,
        scale="tiny",
        repetitions=1,
        workers=2,
        progress=msgs.append,
    )
    total = len(PAIRS) * len(KEYS) * len(FABRICS)
    assert len(msgs) == total
    # done counters are 1..total (in completion order) and every message
    # carries the total and the elapsed-seconds heartbeat.
    counts = sorted(int(m.split("/")[0].lstrip("[")) for m in msgs)
    assert counts == list(range(1, total + 1))
    assert all(f"/{total}]" in m for m in msgs)
    assert all(m.rstrip().endswith("s)") for m in msgs)


def test_sequential_progress_is_in_canonical_order():
    msgs = []
    run_sweep(
        PAIRS, KEYS, FABRICS, scale="tiny", repetitions=1, progress=msgs.append
    )
    counts = [int(m.split("/")[0].lstrip("[")) for m in msgs]
    assert counts == list(range(1, len(msgs) + 1))


def test_sweep_specs_order_matches_sequential_result_rows():
    specs = sweep_specs(PAIRS, KEYS, FABRICS, "tiny", 1)
    rs = run_sweep(PAIRS, KEYS, FABRICS, scale="tiny", repetitions=1)
    got = [(r.fabric, r.ns, r.nt, r.config.key, r.rep) for r in rs.results]
    want = [(s.fabric, s.ns, s.nt, s.config.key, s.rep) for s in specs]
    assert got == want


def test_seed_of_is_stable_across_processes_and_time():
    """CRC32 of the spec token: no per-interpreter hash salt involved."""
    spec = RunSpec(8, 16, "merge-p2p-t", "ethernet", "small", 2)
    token = "8:16:merge-p2p-t:ethernet:2:block"
    assert _seed_of(spec) == zlib.crc32(token.encode())
    # Pinned value: changing the token format would silently re-seed every
    # cached sweep, so treat it as a wire format.
    assert _seed_of(spec) == 2015702806


def test_run_one_is_history_independent():
    """A run's result must not depend on what ran before it in the process
    (prerequisite for parallel == sequential)."""
    spec = RunSpec(4, 8, "merge-p2p-t", "ethernet", "tiny", 0)
    first = run_one(spec)
    # Pollute process history with a different cell, then repeat.
    run_one(RunSpec(8, 2, "baseline-col-a", "infiniband", "tiny", 1))
    again = run_one(spec)
    assert first == again
