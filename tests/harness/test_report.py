"""Figure builders on hand-crafted result sets (no simulations)."""

import pytest

from repro.harness import EXPERIMENTS, ResultSet, RunResult, build_figure
from repro.harness.report import BASELINE_REFERENCE
from repro.malleability import ALL_CONFIGS
from repro.synthetic.presets import SCALES

LADDER = SCALES["tiny"].ladder  # (2, 4, 8)


def synthetic_results():
    """Deterministic fake sweep: reconfig_time = f(config, pair); app_time
    designed so baseline-col-s is 2.0 and merge-col-a is 1.6 everywhere."""
    rows = []
    reconfig_base = {
        "baseline": 0.5,
        "merge": 0.3,
    }
    for fabric in ("ethernet",):
        for ns in LADDER:
            for nt in LADDER:
                if ns == nt:
                    continue
                for cfg in ALL_CONFIGS:
                    rt = reconfig_base[cfg.spawn.value]
                    if cfg.strategy.value in ("A", "T"):
                        rt *= 1.2 if cfg.strategy.value == "A" else 1.4
                    app = 2.0
                    if cfg.key == "merge-col-a":
                        app = 1.6
                    for rep in range(2):
                        rows.append(RunResult(
                            ns=ns, nt=nt, config=cfg, fabric=fabric,
                            scale="tiny", rep=rep,
                            reconfig_time=rt + 0.001 * rep,
                            app_time=app + 0.001 * rep,
                            spawn_time=0.1,
                            overlapped_iterations=0,
                            total_iterations=30,
                        ))
    return ResultSet(rows)


@pytest.fixture(scope="module")
def rs():
    return synthetic_results()


def test_times_figure_medians(rs):
    fig = build_figure(EXPERIMENTS["fig2"], rs, "tiny", "ethernet", "shrink")
    assert fig.x_values == [2, 4]
    assert fig.series["Merge COLS"] == pytest.approx([0.3005, 0.3005])
    assert fig.series["Baseline COLS"] == pytest.approx([0.5005, 0.5005])


def test_alpha_figure_ratios(rs):
    fig = build_figure(EXPERIMENTS["fig4"], rs, "tiny", "ethernet", "expand")
    # A strategies: 1.2x their sync counterpart; T: 1.4x.
    for name, vals in fig.series.items():
        expected = 1.2 if name.endswith("A") else 1.4
        assert vals == pytest.approx([expected] * len(vals), rel=1e-2)


def test_speedup_figure_reference_and_ratios(rs):
    fig = build_figure(EXPERIMENTS["fig7"], rs, "tiny", "ethernet", "shrink")
    assert "Baseline COLS time (s)" in fig.series
    assert fig.series["Merge COLA"] == pytest.approx([1.25, 1.25], rel=1e-2)
    assert fig.series["Merge P2PS"] == pytest.approx([1.0, 1.0], rel=1e-2)
    # The reference config never appears as a speedup series.
    assert "Baseline COLS" not in fig.series


def test_preferred_grid_picks_the_designed_winner(rs):
    fig = build_figure(EXPERIMENTS["fig9"], rs, "tiny", "ethernet", "grid")
    assert set(fig.preferred.values()) == {"merge-col-a"}


def test_reference_constant_is_a_real_config():
    assert BASELINE_REFERENCE in {c.key for c in ALL_CONFIGS}
