"""Harness: runner determinism, ResultSet queries/CSV, figure builders, CLI."""

import numpy as np
import pytest

from repro.harness import (
    EXPERIMENTS,
    ResultSet,
    RunResult,
    RunSpec,
    async_sync_pairs,
    build_figure,
    figure_report,
    headline_speedups,
    pairs_for,
    run_one,
    run_sweep,
)
from repro.harness.cli import main as cli_main
from repro.synthetic.presets import SCALES


@pytest.fixture(scope="module")
def mini_sweep():
    """The full fig2 slice at tiny scale (module-cached)."""
    return run_sweep(
        pairs=pairs_for(EXPERIMENTS["fig2"], "tiny"),
        config_keys=[
            "merge-col-s", "baseline-col-s", "merge-p2p-s", "baseline-p2p-s",
            "merge-rma-s", "baseline-rma-s",
            "merge-col-a", "merge-col-t",
        ],
        fabrics=["ethernet"],
        scale="tiny",
        repetitions=2,
    )


def test_run_one_is_deterministic():
    spec = RunSpec(4, 8, "merge-col-a", "ethernet", "tiny", rep=1)
    a = run_one(spec)
    b = run_one(spec)
    assert a == b


def test_reps_differ():
    a = run_one(RunSpec(4, 8, "merge-col-s", "ethernet", "tiny", rep=0))
    b = run_one(RunSpec(4, 8, "merge-col-s", "ethernet", "tiny", rep=1))
    assert a.app_time != b.app_time


def test_sweep_shape(mini_sweep):
    assert len(mini_sweep) == 4 * 8 * 1 * 2
    assert (8, 4) in mini_sweep.pairs() and (4, 8) in mini_sweep.pairs()
    assert mini_sweep.fabrics() == ["ethernet"]
    assert len(mini_sweep.config_keys()) == 8


def test_times_query(mini_sweep):
    t = mini_sweep.times("reconfig_time", 8, 4, "merge-col-s", "ethernet")
    assert len(t) == 2 and all(v > 0 for v in t)
    with pytest.raises(KeyError):
        mini_sweep.times("reconfig_time", 99, 4, "merge-col-s", "ethernet")


def test_cell_groups(mini_sweep):
    cells = mini_sweep.cell_groups(
        "app_time", [(8, 4)], ["merge-col-s", "baseline-col-s"], "ethernet"
    )
    assert set(cells[(8, 4)]) == {"merge-col-s", "baseline-col-s"}


def test_csv_roundtrip(mini_sweep, tmp_path):
    path = tmp_path / "results.csv"
    mini_sweep.to_csv(path)
    back = ResultSet.from_csv(path)
    assert back.results == mini_sweep.results


def test_pairs_for_slices_and_grid():
    spec = EXPERIMENTS["fig2"]
    pairs = pairs_for(spec, "tiny")
    ladder = SCALES["tiny"].ladder
    top = max(ladder)
    assert set(pairs) == {(top, x) for x in ladder if x != top} | {
        (x, top) for x in ladder if x != top
    }
    grid = pairs_for(EXPERIMENTS["fig6"], "tiny")
    assert len(grid) == len(ladder) * (len(ladder) - 1)


def test_async_sync_mapping():
    mapping = async_sync_pairs()
    assert mapping["merge-col-a"] == "merge-col-s"
    assert mapping["baseline-p2p-t"] == "baseline-p2p-s"
    assert mapping["merge-rma-a"] == "merge-rma-s"
    assert mapping["baseline-rma-t"] == "baseline-rma-s"
    assert len(mapping) == 12


def test_experiment_registry_covers_every_figure():
    assert set(EXPERIMENTS) == {f"fig{i}" for i in range(2, 10)}
    for spec in EXPERIMENTS.values():
        assert spec.metric in ("reconfig_time", "app_time")
        assert spec.presentation in ("times", "alpha", "speedup", "preferred")
        assert spec.expectations


def test_build_times_figure(mini_sweep):
    fig = build_figure(EXPERIMENTS["fig2"], mini_sweep, "tiny", "ethernet", "shrink")
    assert fig.exp_id == "fig2"
    assert fig.x_values == [2, 4]
    assert set(fig.series) == {
        "Merge COLS", "Baseline COLS", "Merge P2PS", "Baseline P2PS",
        "Merge RMAS", "Baseline RMAS",
    }
    # The paper's central sync finding: Merge beats Baseline.
    for x_idx in range(2):
        assert fig.series["Merge COLS"][x_idx] < fig.series["Baseline COLS"][x_idx]


def test_figure_report_smoke(mini_sweep):
    text = figure_report("fig2", mini_sweep, "tiny")
    assert "Figure 2" in text and "Merge COLS" in text
    # Missing cells surface as KeyError (the CLI catches and explains).
    with pytest.raises(KeyError):
        figure_report("fig3", mini_sweep, "tiny")


def test_synthetic_run_drops_no_iterations(mini_sweep):
    for r in mini_sweep.results:
        assert r.total_iterations == SCALES["tiny"].iterations


# ---------------------------------------------------------------------- CLI
def test_cli_list(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig2" in out and "fig9" in out
    assert "merge-col-s" in out


def test_cli_run_and_report(tmp_path, capsys):
    out_csv = tmp_path / "r.csv"
    code = cli_main([
        "run", "--scale", "tiny", "--figures", "fig2", "--reps", "1",
        "--out", str(out_csv),
    ])
    assert code == 0
    assert out_csv.exists()
    code = cli_main([
        "report", "--results", str(out_csv), "--scale", "tiny",
        "--figures", "fig2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "Merge COLS" in out


def test_cli_rejects_unknown_figures():
    with pytest.raises(SystemExit):
        cli_main(["run", "--figures", "fig99"])


def test_cli_predict(capsys):
    code = cli_main([
        "predict", "--ns", "8", "--nt", "4", "--fabric", "ethernet",
        "--method", "col", "--scale", "tiny",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "redistribution" in out and "total" in out
    code = cli_main([
        "predict", "--ns", "4", "--nt", "8", "--baseline", "--scale", "tiny",
    ])
    assert code == 0
    assert "Baseline" in capsys.readouterr().out


def test_resultset_merge(mini_sweep):
    merged = mini_sweep.merge(mini_sweep)
    assert len(merged) == 2 * len(mini_sweep)
    cell = merged.times("app_time", 8, 4, "merge-col-s", "ethernet")
    assert len(cell) == 4  # duplicated samples kept
