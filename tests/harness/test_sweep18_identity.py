"""The 18-config acceptance sweep: every execution style is byte-identical.

One (shrink, grow) pair across the full {Baseline, Merge} x {P2P, COL,
RMA} x {S, A, T} matrix must serialize to the same CSV bytes whether run
sequentially, over the worker fleet, or replayed from the cell cache —
and a uniformly-faulted sweep must hold the same property.  This is the
contract that lets cached figure sweeps mix freely with fresh ones.
"""

import pytest

from repro.harness.runner import ResultSet, run_sweep
from repro.malleability.config import ALL_CONFIGS

KEYS = [c.key for c in ALL_CONFIGS]
PAIRS = [(4, 2), (2, 4)]


@pytest.fixture(scope="module")
def sequential_csv():
    rs = run_sweep(PAIRS, KEYS, ["ethernet"], scale="tiny", repetitions=1)
    return rs.to_csv()


def test_matrix_is_18():
    assert len(KEYS) == 18
    assert sum(1 for k in KEYS if "-rma-" in k) == 6


def test_fleet_parallel_matches_sequential(sequential_csv):
    par = run_sweep(
        PAIRS, KEYS, ["ethernet"], scale="tiny", repetitions=1, workers=2
    )
    assert par.to_csv() == sequential_csv


def test_cached_replay_matches_sequential(sequential_csv, tmp_path):
    cache = tmp_path / "cells"
    first = run_sweep(
        PAIRS, KEYS, ["ethernet"], scale="tiny", repetitions=1, cache=cache
    )
    assert first.to_csv() == sequential_csv
    replay = run_sweep(
        PAIRS, KEYS, ["ethernet"], scale="tiny", repetitions=1, cache=cache
    )
    assert replay.to_csv() == sequential_csv


def test_faulted_sync_sweep_parallel_identity():
    """A crash during redistribution recovers in every *synchronous*
    configuration — the six-config slice the faults-smoke CI job sweeps
    (the async recovery envelope predates the RMA arm and is unchanged) —
    and the faulted sweep stays byte-identical under the fleet."""
    fault = "crash@redist+0.002:node=1"
    sync_keys = [k for k in KEYS if k.endswith("-s")]
    assert len(sync_keys) == 6
    seq = run_sweep(
        PAIRS, sync_keys, ["ethernet"], scale="tiny", repetitions=1,
        faults=fault,
    )
    par = run_sweep(
        PAIRS, sync_keys, ["ethernet"], scale="tiny", repetitions=1,
        faults=fault, workers=2,
    )
    assert seq.to_csv() == par.to_csv()
    assert all(r.faults for r in seq.results)


def test_old_12_config_csv_still_loads():
    """Pre-RMA cached sweeps (original 11-column layout, two-sided configs
    only) load unchanged: the column is still literally ``config_key`` and
    the missing breakdown columns default."""
    old = (
        "ns,nt,config_key,fabric,scale,rep,reconfig_time,app_time,"
        "spawn_time,overlapped_iterations,total_iterations\n"
        "4,2,merge-col-s,ethernet,tiny,0,0.5,2.0,0.1,0,48\n"
        "4,2,baseline-p2p-t,ethernet,tiny,0,0.7,2.2,0.2,3,48\n"
    )
    rs = ResultSet.from_csv(old)
    assert [r.config.key for r in rs.results] == [
        "merge-col-s", "baseline-p2p-t"
    ]
    assert rs.results[0].redist_time == 0.0  # defaulted, not garbage
    assert rs.results[1].overlapped_iterations == 3
