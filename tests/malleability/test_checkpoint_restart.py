"""Checkpoint/restart baseline: correctness and the §2 performance claim."""

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, Machine, ParallelFileSystem
from repro.malleability import (
    CheckpointRestartConfig,
    ReconfigConfig,
    ReconfigRequest,
    RunStats,
    run_cr_malleable,
    run_malleable,
)
from repro.simulate import Simulator
from repro.smpi import MpiWorld, SpawnModel
from tests.malleability.test_manager import N_ITERS, RECONF_AT, ToyApp


def run_cr(ns, nt, cr_config=None, iters=N_ITERS, reconf_at=RECONF_AT):
    sim = Simulator()
    machine = Machine(sim, 4, 2, ETHERNET_10G)
    pfs = ParallelFileSystem(machine)
    world = MpiWorld(
        machine, spawn_model=SpawnModel(base=0.01, per_process=0.001, per_node=0.002)
    )
    stats = RunStats()
    app = ToyApp()
    app.n_iterations = iters
    requests = [ReconfigRequest(at_iteration=reconf_at, n_targets=nt)]
    world.launch(
        run_cr_malleable,
        slots=range(ns),
        args=(app, requests, stats, pfs, cr_config or CheckpointRestartConfig()),
    )
    sim.run()
    return stats, pfs


@pytest.mark.parametrize("ns,nt", [(4, 2), (2, 4), (3, 3)])
def test_cr_preserves_iteration_stream(ns, nt):
    """The ToyApp invariant (sum(x) grows by n_rows per iteration) holds
    across the disk round-trip — data comes back exactly."""
    stats, pfs = run_cr(ns, nt)
    assert stats.total_iterations() == N_ITERS
    assert len(stats.reconfigs) == 1
    assert stats.last_reconfig.reconfiguration_time > 0
    # Every source wrote one checkpoint file.
    assert len(pfs.files()) == ns
    assert pfs.bytes_written > 0
    assert pfs.bytes_read > 0


def test_cr_reads_only_overlapping_segments():
    stats, pfs = run_cr(4, 2)
    # Shrink 4 -> 2: targets read everything once; read bytes ~ written.
    assert pfs.bytes_read == pytest.approx(pfs.bytes_written, rel=0.05)


def test_cr_requeue_delay_charged():
    fast, _ = run_cr(3, 3, CheckpointRestartConfig(requeue_delay=0.0, restart_cost=0.0))
    slow, _ = run_cr(3, 3, CheckpointRestartConfig(requeue_delay=2.0, restart_cost=0.5))
    assert (
        slow.last_reconfig.reconfiguration_time
        >= fast.last_reconfig.reconfiguration_time + 2.4
    )


def test_cr_much_slower_than_in_memory():
    """The paper's Background claim, measured: in-memory redistribution
    beats disk-based C/R decisively on the same machine and data."""
    stats_cr, _ = run_cr(4, 2)

    sim = Simulator()
    machine = Machine(sim, 4, 2, ETHERNET_10G)
    world = MpiWorld(
        machine, spawn_model=SpawnModel(base=0.01, per_process=0.001, per_node=0.002)
    )
    stats_mem = RunStats()
    app = ToyApp()
    world.launch(
        run_malleable,
        slots=range(4),
        args=(app, ReconfigConfig.parse("merge-col-s"),
              [ReconfigRequest(RECONF_AT, 2)], stats_mem),
    )
    sim.run()

    cr_time = stats_cr.last_reconfig.reconfiguration_time
    mem_time = stats_mem.last_reconfig.reconfiguration_time
    assert cr_time > 2 * mem_time, (
        f"C/R ({cr_time:.4f}s) should be much slower than in-memory "
        f"({mem_time:.4f}s)"
    )


def test_pfs_validation_and_api():
    sim = Simulator()
    machine = Machine(sim, 2, 1, ETHERNET_10G)
    with pytest.raises(ValueError):
        ParallelFileSystem(machine, write_bandwidth=0)
    pfs = ParallelFileSystem(machine)
    with pytest.raises(FileNotFoundError):
        pfs.read(machine.nodes[0], "missing")
    with pytest.raises(FileNotFoundError):
        pfs.segments_of("missing")
    assert not pfs.exists("missing")
    pfs.delete("missing")  # idempotent


class TinyCsrApp:
    """3-row CSR + dense app: with 4 ranks, rank 3 owns *zero* rows.

    Exercises the empty-rank checkpoint path: ``_serialize`` must write a
    zero-byte marker segment instead of touching the (matrix-less) store.
    """

    n_rows = 3
    n_iterations = 8

    def __init__(self):
        from repro.redistribution import FieldSpec

        self.a_global = sp_csr()
        self.specs = (
            FieldSpec("A", "csr", constant=True),
            FieldSpec("x", "dense", constant=False),
        )

    def initial_data(self, lo, hi):
        return {
            "A": self.a_global[lo:hi],
            "x": np.arange(lo, hi, dtype=np.float64),
        }

    def iterate(self, mpi, comm, dataset, iteration):
        yield from mpi.compute(1e-3)
        x = dataset.stores["x"].data
        total = yield from mpi.allreduce(float(x.sum()), comm=comm)
        assert total == pytest.approx(3.0 + iteration * self.n_rows)
        x += 1.0

    def on_handoff(self, mpi, dataset):
        store = dataset.stores["A"]
        if store.n_rows:
            got = store.matrix.toarray()
            want = self.a_global[dataset.lo : dataset.hi].toarray()
            np.testing.assert_array_equal(got, want)


def sp_csr():
    from scipy import sparse

    return sparse.csr_matrix(
        np.array([[2.0, 0.0, 1.0], [0.0, 3.0, 0.0], [1.0, 0.0, 4.0]])
    )


@pytest.mark.parametrize(
    "ns,nts",
    [
        (4, [2]),  # shrink: source rank 3 is empty at the checkpoint
        (2, [4]),  # grow: restarted rank 3 is empty ever after
        (4, [4, 2]),  # empty rank both writes gen0 and re-writes gen1
    ],
)
def test_cr_empty_ranks_shrink_grow(ns, nts):
    """Zero-row ranks survive the disk round-trip in both directions."""
    sim = Simulator()
    machine = Machine(sim, 4, 2, ETHERNET_10G)
    pfs = ParallelFileSystem(machine)
    world = MpiWorld(
        machine, spawn_model=SpawnModel(base=0.01, per_process=0.001, per_node=0.002)
    )
    stats = RunStats()
    app = TinyCsrApp()
    requests = [
        ReconfigRequest(at_iteration=2 + 2 * i, n_targets=nt)
        for i, nt in enumerate(nts)
    ]
    world.launch(
        run_cr_malleable,
        slots=range(ns),
        args=(app, requests, stats, pfs, CheckpointRestartConfig(0.05, 0.05)),
    )
    sim.run()
    assert stats.total_iterations() == app.n_iterations
    assert len(stats.reconfigs) == len(nts)
    # The empty rank's segments are real files with zero payload bytes.
    for gen in range(len(nts)):
        n_writers = ns if gen == 0 else nts[gen - 1]
        empties = [
            r for r in range(n_writers)
            if r >= app.n_rows
        ]
        for r in empties:
            segs = pfs.segments_of(f"checkpoint.gen{gen}.rank{r}")
            assert [s.nbytes for s in segs] == [0, 0]
            assert all(s.payload is None for s in segs)


def test_zero_row_csr_store_sizes_to_zero():
    from repro.redistribution import FieldSpec
    from repro.redistribution.stores import CsrStore

    store = CsrStore(FieldSpec("A", "csr"), 5, 5)
    assert store.n_rows == 0
    assert store.range_nbytes(5, 5) == 0


def test_cr_with_real_cg_data_preserves_numerics():
    """C/R round-trips real CSR + dense payloads through the disk: the CG
    residual stream must match the sequential reference exactly."""
    from repro.apps import ConjugateGradientApp, cg_reference, poisson_2d

    a = poisson_2d(5)
    rng = np.random.default_rng(11)
    b = rng.standard_normal(a.shape[0])
    iters = 14
    app = ConjugateGradientApp(a, b, n_iterations=iters)

    sim = Simulator()
    machine = Machine(sim, 4, 2, ETHERNET_10G)
    pfs = ParallelFileSystem(machine)
    world = MpiWorld(
        machine, spawn_model=SpawnModel(base=0.002, per_process=2e-4, per_node=2e-4)
    )
    stats = RunStats()
    requests = [ReconfigRequest(at_iteration=6, n_targets=4)]
    world.launch(
        run_cr_malleable, slots=range(2),
        args=(app, requests, stats, pfs, CheckpointRestartConfig(0.05, 0.05)),
    )
    sim.run()

    _, ref = cg_reference(a, b, iters)
    assert app.residuals == pytest.approx(ref, rel=1e-12)
    assert stats.total_iterations() == iters
