"""The drain path: iteration budget ends while a reconfiguration is in
flight — the manager must complete it rather than orphan spawned ranks."""

import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.malleability import (
    ReconfigConfig,
    ReconfigRequest,
    RunStats,
    run_malleable,
)
from repro.simulate import Simulator
from repro.smpi import MpiWorld, SpawnModel
from tests.malleability.test_manager import ToyApp


@pytest.mark.parametrize("config_key", ["merge-col-a", "baseline-p2p-a", "merge-p2p-t"])
def test_reconfig_requested_on_last_iterations_still_completes(config_key):
    """Reconfigure 2 iterations before the end with a spawn cost that takes
    far longer than the remaining iterations: the drain loop must finish the
    reconfiguration, run 0 remaining iterations on the new group, and leave
    a complete record."""
    sim = Simulator()
    machine = Machine(sim, 4, 2, ETHERNET_10G)
    # Slow spawn: the overlap cannot complete within the iteration budget.
    world = MpiWorld(
        machine, spawn_model=SpawnModel(base=0.5, per_process=0.01, per_node=0.01)
    )
    stats = RunStats()
    app = ToyApp()
    config = ReconfigConfig.parse(config_key)
    requests = [ReconfigRequest(at_iteration=app.n_iterations - 2, n_targets=6)]
    world.launch(run_malleable, slots=range(3), args=(app, config, requests, stats))
    sim.run()  # must not deadlock
    assert stats.total_iterations() == app.n_iterations
    rec = stats.last_reconfig
    assert rec.data_complete_at is not None
    assert rec.reconfiguration_time > 0.5  # dominated by the slow spawn


def test_drain_handoff_group_runs_zero_iterations():
    sim = Simulator()
    machine = Machine(sim, 4, 2, ETHERNET_10G)
    world = MpiWorld(
        machine, spawn_model=SpawnModel(base=1.0, per_process=0.01, per_node=0.01)
    )
    stats = RunStats()
    app = ToyApp()
    requests = [ReconfigRequest(at_iteration=app.n_iterations - 1, n_targets=4)]
    world.launch(
        run_malleable, slots=range(2),
        args=(app, ReconfigConfig.parse("merge-col-a"), requests, stats),
    )
    sim.run()
    # All iterations ran in group 0; group 1 exists but iterated 0 times.
    assert stats.iterations_by_group.get(0, 0) == app.n_iterations
    assert stats.iterations_by_group.get(1, 0) == 0
    assert stats.finished_at is not None
