"""Future-work extensions through the full malleability stack:
RMA redistribution configs and the movement-minimising plan factory."""

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.malleability import (
    ReconfigConfig,
    ReconfigRequest,
    RunStats,
    run_malleable,
)
from repro.redistribution import RedistMethod, RedistributionPlan
from repro.simulate import Simulator
from repro.smpi import MpiWorld, SpawnModel
from tests.malleability.test_manager import N_ITERS, RECONF_AT, ToyApp


def run_job(config_key, ns, nt, plan_factory=RedistributionPlan.block):
    sim = Simulator()
    machine = Machine(sim, 4, 2, ETHERNET_10G)
    world = MpiWorld(
        machine, spawn_model=SpawnModel(base=0.01, per_process=0.001, per_node=0.002)
    )
    stats = RunStats()
    app = ToyApp()
    config = ReconfigConfig.parse(config_key)
    requests = [ReconfigRequest(at_iteration=RECONF_AT, n_targets=nt)]
    world.launch(
        run_malleable,
        slots=range(ns),
        args=(app, config, requests, stats, plan_factory),
    )
    sim.run()
    return stats


def test_rma_config_parses():
    cfg = ReconfigConfig.parse("merge-rma-s")
    assert cfg.redist is RedistMethod.RMA
    assert cfg.name == "Merge RMAS"


@pytest.mark.parametrize("config_key", ["merge-rma-s", "merge-rma-a", "baseline-rma-s"])
@pytest.mark.parametrize("ns,nt", [(4, 2), (2, 4)])
def test_rma_reconfigurations_preserve_iteration_stream(config_key, ns, nt):
    stats = run_job(config_key, ns, nt)
    assert stats.total_iterations() == N_ITERS
    assert stats.last_reconfig.reconfiguration_time > 0


@pytest.mark.parametrize("config_key", ["merge-p2p-s", "merge-col-a", "baseline-p2p-t"])
def test_movement_minimizing_plan_through_full_run(config_key):
    stats = run_job(
        config_key, 2, 4, plan_factory=RedistributionPlan.movement_minimizing
    )
    assert stats.total_iterations() == N_ITERS


def test_movement_minimizing_reduces_redistributed_bytes():
    """Expansion 2->4: persisting ranks keep more rows, so less moves."""
    base = RedistributionPlan.block(40, 2, 4)
    opt = RedistributionPlan.movement_minimizing(40, 2, 4)
    assert opt.moved_rows() < base.moved_rows()
    # And the persisting ranks' self-kept rows grew.
    assert sum(opt.self_rows(r) for r in range(2)) > sum(
        base.self_rows(r) for r in range(2)
    )
