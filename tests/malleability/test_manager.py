"""End-to-end malleability: all 12 configurations, expand and shrink.

The toy application increments its *variable* vector ``x`` by 1 every
iteration and checks ``sum(x) == sum(x0) + it * n_rows`` with an allreduce
each iteration.  This invariant fails if the reconfiguration loses or
duplicates an iteration, mis-redistributes the mutated variable data, or
resumes at the wrong place — i.e. it checks Stages 2-4 end to end.
"""

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.malleability import (
    ALL_CONFIGS,
    RankOutcome,
    ReconfigConfig,
    ReconfigRequest,
    RunStats,
    run_malleable,
)
from repro.redistribution import FieldSpec
from repro.simulate import Simulator
from repro.smpi import MpiWorld

N_ROWS = 40
N_ITERS = 12
RECONF_AT = 5


class ToyApp:
    """Shared by all ranks: keep it stateless (per-rank state lives in the
    dataset)."""

    n_iterations = N_ITERS
    n_rows = N_ROWS
    specs = (
        FieldSpec("x", "dense", constant=False),
        FieldSpec("blob", "virtual", constant=True, bytes_per_row=2000.0),
    )

    def initial_data(self, lo, hi):
        return {"x": np.arange(lo, hi, dtype=np.float64)}

    #: long enough that a few iterations overlap the (cheap) test spawn model.
    compute_per_iter = 5e-3

    def iterate(self, mpi, comm, dataset, iteration):
        yield from mpi.compute(self.compute_per_iter)
        x = dataset.stores["x"].data
        total = yield from mpi.allreduce(float(x.sum()), comm=comm)
        expected = N_ROWS * (N_ROWS - 1) / 2 + iteration * N_ROWS
        assert total == pytest.approx(expected), (
            f"iteration {iteration}: global sum {total} != {expected}"
        )
        x += 1.0

    def on_handoff(self, mpi, dataset):
        # Rebuild-nothing hook; verify the received block is the right slice.
        assert dataset.stores["x"].data.shape[0] == dataset.hi - dataset.lo


def run_job(config, ns, nt, n_iters=N_ITERS, reconf_at=RECONF_AT):
    from repro.smpi import SpawnModel

    sim = Simulator()
    machine = Machine(sim, n_nodes=4, cores_per_node=2, fabric=ETHERNET_10G)
    world = MpiWorld(
        machine,
        spawn_model=SpawnModel(base=0.01, per_process=0.001, per_node=0.002),
    )
    stats = RunStats()
    app = ToyApp()
    app.n_iterations = n_iters
    requests = [ReconfigRequest(at_iteration=reconf_at, n_targets=nt)]
    res = world.launch(
        run_malleable, slots=range(ns), args=(app, config, requests, stats)
    )
    sim.run()
    first_group_outcomes = [p.result for p in res.procs]
    spawned_outcomes = [
        p.result for p in sim._processes if p.name.startswith("spawned")
    ]
    return stats, first_group_outcomes, spawned_outcomes, sim


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.key)
@pytest.mark.parametrize("ns,nt", [(4, 2), (2, 4)])
def test_all_configs_preserve_the_iteration_stream(config, ns, nt):
    stats, first, spawned, sim = run_job(config, ns, nt)
    # Every iteration ran exactly once across groups.
    assert stats.total_iterations() == N_ITERS
    # The reconfiguration completed with full milestones.
    rec = stats.last_reconfig
    assert rec.reconfiguration_time > 0
    assert rec.spawn_started_at is not None
    assert rec.data_complete_at is not None
    assert stats.finished_at is not None
    # Outcome bookkeeping per spawn method.
    from repro.malleability import SpawnMethod

    if config.spawn is SpawnMethod.BASELINE:
        assert all(o is RankOutcome.RETIRED for o in first)
        assert spawned.count(RankOutcome.COMPLETED) == nt
    else:
        completed_first = first.count(RankOutcome.COMPLETED)
        if nt >= ns:  # expansion: all sources persist
            assert completed_first == ns
            assert spawned.count(RankOutcome.COMPLETED) == nt - ns
        else:  # shrink: nt persist, rest retire
            assert completed_first == nt
            assert first.count(RankOutcome.RETIRED) == ns - nt


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.key)
def test_same_size_reconfiguration(config):
    """NS == NT is legal (pure data reshuffle / process refresh)."""
    stats, first, spawned, sim = run_job(config, 3, 3)
    assert stats.total_iterations() == N_ITERS


def test_async_strategies_overlap_iterations():
    """A/T must execute iterations while reconfiguring; S must not."""
    sync = ReconfigConfig.parse("merge-col-s")
    async_nb = ReconfigConfig.parse("merge-col-a")
    stats_s, *_ = run_job(sync, 4, 2)
    stats_a, *_ = run_job(async_nb, 4, 2)
    assert stats_s.last_reconfig.overlapped_iterations == 0
    assert stats_a.last_reconfig.overlapped_iterations >= 1
    # Async sources stop later than the checkpoint iteration.
    assert stats_a.last_reconfig.sources_stopped_iteration > RECONF_AT
    assert stats_s.last_reconfig.sources_stopped_iteration == RECONF_AT


def test_two_sequential_reconfigurations():
    """Expand then shrink in one run (the manager supports chains)."""
    config = ReconfigConfig.parse("merge-p2p-s")
    sim = Simulator()
    machine = Machine(sim, n_nodes=4, cores_per_node=2, fabric=ETHERNET_10G)
    world = MpiWorld(machine)
    stats = RunStats()
    app = ToyApp()
    requests = [
        ReconfigRequest(at_iteration=4, n_targets=6),
        ReconfigRequest(at_iteration=8, n_targets=2),
    ]
    res = world.launch(run_malleable, slots=range(3), args=(app, config, requests, stats))
    sim.run()
    assert stats.total_iterations() == N_ITERS
    assert len(stats.reconfigs) == 2
    assert stats.reconfigs[0].n_targets == 6
    assert stats.reconfigs[1].n_targets == 2


def test_baseline_chain_of_reconfigurations():
    config = ReconfigConfig.parse("baseline-p2p-s")
    sim = Simulator()
    machine = Machine(sim, n_nodes=4, cores_per_node=2, fabric=ETHERNET_10G)
    world = MpiWorld(machine)
    stats = RunStats()
    app = ToyApp()
    requests = [
        ReconfigRequest(at_iteration=3, n_targets=4),
        ReconfigRequest(at_iteration=9, n_targets=2),
    ]
    res = world.launch(run_malleable, slots=range(2), args=(app, config, requests, stats))
    sim.run()
    assert stats.total_iterations() == N_ITERS
    assert len(stats.reconfigs) == 2


def test_config_parsing_and_names():
    c = ReconfigConfig.parse("Merge COLS")
    assert c.name == "Merge COLS"
    assert c.key == "merge-col-s"
    c2 = ReconfigConfig.parse("baseline-p2p-t")
    assert c2.name == "Baseline P2PT"
    assert ReconfigConfig.parse(c2.key) == c2
    with pytest.raises(ValueError):
        ReconfigConfig.parse("bogus")
    c3 = ReconfigConfig.parse("Merge RMAT")
    assert c3.key == "merge-rma-t"
    assert len(ALL_CONFIGS) == 18
    assert len({c.key for c in ALL_CONFIGS}) == 18


def test_all_18_keys_and_names_round_trip():
    """Every cell of the matrix parses back from both spellings, in any
    case and with any separator convention."""
    for c in ALL_CONFIGS:
        assert ReconfigConfig.parse(c.key) == c
        assert ReconfigConfig.parse(c.name) == c
        assert ReconfigConfig.parse(c.key.upper().replace("-", "_")) == c
    assert sum(c.redist.value == "rma" for c in ALL_CONFIGS) == 6


def test_rms_scripting():
    from repro.malleability import ScriptedRMS

    rms = ScriptedRMS([ReconfigRequest(5, 4), ReconfigRequest(9, 2)])
    assert rms.check(0) is None
    assert rms.check(5).n_targets == 4
    assert rms.check(5) is None  # fires once
    assert rms.check(10).n_targets == 2
    assert rms.exhausted
    with pytest.raises(ValueError):
        ScriptedRMS([ReconfigRequest(5, 4), ReconfigRequest(5, 2)])
    with pytest.raises(ValueError):
        ReconfigRequest(-1, 2)
    with pytest.raises(ValueError):
        ReconfigRequest(0, 0)
