"""Custom slot maps: reconfigurations land spawned ranks where told."""

import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.malleability import (
    ReconfigConfig,
    ReconfigRequest,
    RunStats,
    run_malleable,
)
from repro.redistribution import RedistributionPlan
from repro.simulate import Simulator
from repro.smpi import MpiWorld, SpawnModel
from tests.malleability.test_manager import ToyApp


@pytest.mark.parametrize("config_key", ["merge-p2p-s", "baseline-col-a"])
def test_spawned_ranks_follow_the_slot_map(config_key):
    """Offset slot map: all processes of the job (original + spawned) must
    stay inside the job's slot block [4, 12)."""
    base = 4
    sim = Simulator()
    machine = Machine(sim, 6, 2, ETHERNET_10G)
    world = MpiWorld(
        machine, spawn_model=SpawnModel(base=0.01, per_process=0.001, per_node=0.002)
    )
    stats = RunStats()
    app = ToyApp()
    config = ReconfigConfig.parse(config_key)
    requests = [ReconfigRequest(at_iteration=5, n_targets=6)]
    world.launch(
        run_malleable,
        slots=[base + i for i in range(3)],
        args=(
            app, config, requests, stats,
            RedistributionPlan.block,
            (lambda i: base + i),   # slot_of
        ),
    )
    sim.run()
    assert stats.total_iterations() == app.n_iterations
    # Every process the world ever placed sits inside the block.
    for gid, slot in world.slot_of.items():
        assert base <= slot < base + 8, f"gid {gid} placed at slot {slot}"


def test_rms_factory_overrides_requests():
    """A factory-supplied RMS wins over the (empty) request list."""
    from repro.malleability import ScriptedRMS

    sim = Simulator()
    machine = Machine(sim, 4, 2, ETHERNET_10G)
    world = MpiWorld(
        machine, spawn_model=SpawnModel(base=0.01, per_process=0.001, per_node=0.002)
    )
    stats = RunStats()
    app = ToyApp()
    config = ReconfigConfig.parse("merge-col-s")
    factory = lambda: ScriptedRMS([ReconfigRequest(4, 6)])  # noqa: E731
    world.launch(
        run_malleable,
        slots=range(3),
        args=(app, config, [], stats, RedistributionPlan.block,
              (lambda i: i), factory),
    )
    sim.run()
    assert len(stats.reconfigs) == 1
    assert stats.reconfigs[0].n_targets == 6
