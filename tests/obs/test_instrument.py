"""MetricsProbe: attach/detach hygiene and recorded layer metrics."""

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.obs import MetricsProbe, MetricsRegistry
from repro.simulate import Simulator
from repro.smpi import MpiWorld


def build_stack():
    sim = Simulator()
    machine = Machine(sim, 2, 1, ETHERNET_10G)
    world = MpiWorld(machine)
    return sim, machine, world


def run_pingpong(sim, world, nbytes=50_000):
    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.compute(0.01)
            yield from mpi.send(np.zeros(nbytes // 8), dest=1, label="payload")
            return None
        yield from mpi.recv(source=0)
        return None

    world.launch(main, slots=[0, 1])
    sim.run()


def test_probe_records_cluster_and_smpi_metrics():
    sim, machine, world = build_stack()
    probe = MetricsProbe().attach(machine, world)
    run_pingpong(sim, world)
    reg = probe.detach().finalize()
    doc = reg.to_dict()
    # per-link traffic and flow-size histogram
    assert any(k.startswith("cluster.link.bytes{") for k in doc["counters"])
    assert doc["histograms"]["cluster.flow_nbytes"]["n"] > 0
    # per-node oversubscription gauge exists for every node
    over = [
        k for k in doc["gauges"]
        if k.startswith("cluster.node.oversubscription{")
    ]
    assert len(over) == len(machine.nodes)
    # cooperative smpi emission: per-communicator, per-protocol bytes
    smpi = [k for k in doc["counters"] if k.startswith("smpi.bytes{")]
    assert smpi and all("comm=" in k and "protocol=" in k for k in smpi)


def test_attach_sets_and_detach_clears_world_metrics():
    _, machine, world = build_stack()
    assert world.metrics is None
    probe = MetricsProbe().attach(machine, world)
    assert world.metrics is probe.registry
    probe.detach()
    assert world.metrics is None


def test_detach_restores_wrapped_hooks():
    _, machine, world = build_stack()
    net_start = machine.network.start_flow
    net_activate = machine.network._activate
    node_hooks = [
        (n.submit, n.add_poller, n.remove_poller) for n in machine.nodes
    ]
    probe = MetricsProbe().attach(machine, world)
    assert machine.network.start_flow is not net_start
    probe.detach()
    # bound methods compare equal when __self__/__func__ match the originals
    assert machine.network.start_flow == net_start
    assert machine.network._activate == net_activate
    for node, (sub, add, rem) in zip(machine.nodes, node_hooks):
        assert node.submit == sub
        assert node.add_poller == add
        assert node.remove_poller == rem


def test_double_attach_rejected():
    _, machine, world = build_stack()
    probe = MetricsProbe().attach(machine, world)
    with pytest.raises(RuntimeError):
        probe.attach(machine, world)
    probe.detach()
    with pytest.raises(RuntimeError):
        probe.detach()


def test_second_probe_on_same_world_rejected():
    _, machine, world = build_stack()
    MetricsProbe().attach(machine, world)
    with pytest.raises(RuntimeError):
        MetricsProbe().attach(machine, world)


def test_finalize_snapshots_always_on_counters():
    sim, machine, world = build_stack()
    probe = MetricsProbe().attach(machine, world)
    run_pingpong(sim, world)
    probe.detach()
    reg = probe.finalize()
    doc = reg.to_dict()
    assert doc["counters"]["cluster.network.bytes_carried"] > 0
    allocations = (
        doc["counters"]["cluster.allocator.reallocations"]
        + doc["counters"]["cluster.allocator.fast_path_hits"]
    )
    assert allocations >= 1  # at least one flow was rate-allocated
    busy = [
        k for k in doc["gauges"]
        if k.startswith("cluster.node.busy_coreseconds{")
    ]
    peaks = [
        k for k in doc["gauges"]
        if k.startswith("cluster.node.peak_oversubscription{")
    ]
    assert len(busy) == len(machine.nodes)
    assert len(peaks) == len(machine.nodes)
    assert any(doc["gauges"][k]["last"] > 0 for k in peaks)
    # per-label traffic mirrored from the world's always-on accounting
    labels = [k for k in doc["counters"] if k.startswith("smpi.bytes_by_label")]
    assert labels


def test_wait_blocked_timer_recorded():
    sim, machine, world = build_stack()
    probe = MetricsProbe().attach(machine, world)
    run_pingpong(sim, world)
    reg = probe.detach().registry
    waits = [
        k for k in reg.to_dict()["timers"] if k.startswith("smpi.wait_blocked")
    ]
    assert waits  # the receiver blocked waiting for rank 0's payload


def test_detached_run_emits_nothing():
    sim, machine, world = build_stack()
    run_pingpong(sim, world)
    assert world.metrics is None  # cooperative guard stayed cold
