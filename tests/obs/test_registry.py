"""MetricsRegistry: primitives, canonical keys, merge/serialize determinism."""

import json

import pytest

from repro.obs import MetricsRegistry, metric_key
from repro.obs.registry import Counter, Gauge, Histogram, Timer


def test_metric_key_sorts_labels():
    assert metric_key("smpi.bytes", {}) == "smpi.bytes"
    a = metric_key("smpi.bytes", {"protocol": "eager", "comm": 1})
    b = metric_key("smpi.bytes", {"comm": 1, "protocol": "eager"})
    assert a == b == "smpi.bytes{comm=1,protocol=eager}"


def test_counter_inc_and_merge():
    c = Counter()
    c.inc()
    c.inc(41.0)
    assert c.value == 42.0
    d = Counter()
    d.inc(8.0)
    c.merge(d)
    assert c.value == 50.0


def test_gauge_aggregates_and_timeline():
    g = Gauge()
    for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 0.5)]:
        g.set(v, t)
    assert g.last == 0.5 and g.min == 0.5 and g.peak == 3.0 and g.n == 3
    assert g.samples == [(0.0, 1.0), (1.0, 3.0), (2.0, 0.5)]
    d = g.to_dict()
    assert d["last"] == 0.5 and d["peak"] == 3.0 and d["dropped"] == 0


def test_gauge_sample_cap_records_drops():
    g = Gauge(sample_limit=2)
    for i in range(5):
        g.set(float(i), float(i))
    assert len(g.samples) == 2 and g.dropped == 3 and g.n == 5


def test_histogram_buckets_power_of_two():
    h = Histogram()
    for v in [0, 1, 3, 1000, 1024]:
        h.observe(v)
    assert h.n == 5 and h.min == 0 and h.max == 1024
    assert h.bucket_of(0) == 0 and h.bucket_of(1) == 1
    assert h.bucket_of(3) == 4 and h.bucket_of(1000) == 1024
    assert h.buckets[1024] == 2  # 1000 and 1024 share a bucket
    assert h.mean == pytest.approx(2028 / 5)


def test_timer_spans_and_mean():
    t = Timer()
    t.record(0.0, 1.0, label="a")
    t.record(2.0, 2.5, label="b")
    assert t.n == 2 and t.total == pytest.approx(1.5)
    assert t.mean == pytest.approx(0.75)
    assert t.min == pytest.approx(0.5) and t.max == pytest.approx(1.0)
    assert t.spans == [(0.0, 1.0, "a"), (2.0, 2.5, "b")]


def _sample_registry(offset=0.0):
    reg = MetricsRegistry()
    reg.counter("smpi.bytes", comm=1, protocol="eager").inc(100 + offset)
    reg.gauge("node.load", node="n0").set(2.0 + offset, t=1.0)
    reg.histogram("sizes").observe(64)
    reg.timer("phase", stage="values").record(0.0, 0.25 + offset, "x")
    reg.record("reconfigurations", {"index": 0, "total_seconds": 1.0})
    reg.meta["scale"] = "tiny"
    return reg


def test_to_dict_is_deterministic_json():
    a = json.dumps(_sample_registry().to_dict(), sort_keys=True)
    b = json.dumps(_sample_registry().to_dict(), sort_keys=True)
    assert a == b


def test_from_dict_roundtrip():
    reg = _sample_registry()
    clone = MetricsRegistry.from_dict(reg.to_dict())
    assert clone.to_dict() == reg.to_dict()


def test_merge_accumulates_each_family():
    a = _sample_registry()
    b = _sample_registry(offset=1.0)
    a.merge(b)
    assert a.counter("smpi.bytes", comm=1, protocol="eager").value == 201.0
    g = a.gauge("node.load", node="n0")
    assert g.n == 2 and g.last == 3.0 and g.peak == 3.0
    assert a.histogram("sizes").n == 2
    t = a.timer("phase", stage="values")
    assert t.n == 2 and t.total == pytest.approx(1.5)
    assert len(a.records["reconfigurations"]) == 2


def test_merge_order_is_canonical():
    """Merging cells in the same order always yields identical documents —
    the property the parallel sweep executor relies on."""
    cells = [_sample_registry(offset=float(i)) for i in range(4)]
    master1 = MetricsRegistry()
    for c in cells:
        master1.merge(MetricsRegistry.from_dict(c.to_dict()))
    master2 = MetricsRegistry()
    for c in cells:
        master2.merge(c)
    assert json.dumps(master1.to_dict(), sort_keys=True) == json.dumps(
        master2.to_dict(), sort_keys=True
    )


def test_feed_tracer_replays_timer_spans():
    class FakeTracer:
        def __init__(self):
            self.marks = []

        def mark(self, lane, label, t0, t1=None):
            self.marks.append((lane, label, t0, t1))

    reg = _sample_registry()
    tracer = FakeTracer()
    n = reg.feed_tracer(tracer)
    assert n == 1
    lane, label, t0, t1 = tracer.marks[0]
    assert lane.startswith("obs:phase") and (t0, t1) == (0.0, 0.25)


def test_empty_aggregates_export_none():
    reg = MetricsRegistry()
    reg.gauge("g")
    reg.timer("t")
    reg.histogram("h")
    doc = reg.to_dict()
    assert doc["gauges"]["g"]["min"] is None
    assert doc["timers"]["t"]["max"] is None
    assert doc["histograms"]["h"]["min"] is None
