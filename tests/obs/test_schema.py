"""metrics.json schema: validation, fingerprint stability, CLI checker."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    build_metrics_doc,
    read_metrics_json,
    schema_fingerprint,
    validate_metrics,
    write_metrics_json,
)
from repro.obs.schema import METRICS_SCHEMA, SCHEMA_VERSION, _main


def full_doc():
    reg = MetricsRegistry()
    reg.counter("smpi.bytes", comm=1, protocol="eager").inc(10)
    reg.gauge("cluster.node.oversubscription", node="n0").set(1.5, t=0.5)
    reg.histogram("smpi.message_nbytes").observe(4096)
    reg.timer("redist.phase_seconds", method="col", phase="values").record(
        0.0, 0.1, "lbl"
    )
    reg.record(
        "reconfigurations",
        {
            "index": 0,
            "n_sources": 2,
            "n_targets": 4,
            "rms_decision_seconds": 0.0,
            "plan_build_seconds": 0.0,
            "spawn_seconds": 0.01,
            "redistribution_seconds": 0.02,
            "commit_seconds": 0.0,
            "total_seconds": 0.03,
        },
    )
    return build_metrics_doc(reg, meta={"scale": "tiny"})


def test_valid_document_passes():
    validate_metrics(full_doc())  # must not raise


def test_missing_top_level_key_fails():
    doc = full_doc()
    del doc["gauges"]
    with pytest.raises(ValueError, match="missing top-level key 'gauges'"):
        validate_metrics(doc)


def test_wrong_schema_version_fails():
    doc = full_doc()
    doc["schema_version"] = SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema_version"):
        validate_metrics(doc)


def test_malformed_entry_fails():
    doc = full_doc()
    key = next(iter(doc["timers"]))
    del doc["timers"][key]["spans"]
    with pytest.raises(ValueError, match="missing field 'spans'"):
        validate_metrics(doc)
    doc = full_doc()
    key = next(iter(doc["counters"]))
    doc["counters"][key] = "not-a-number"
    with pytest.raises(ValueError, match="must be a number"):
        validate_metrics(doc)


def test_breakdown_record_fields_enforced():
    doc = full_doc()
    del doc["records"]["reconfigurations"][0]["spawn_seconds"]
    with pytest.raises(ValueError, match="spawn_seconds"):
        validate_metrics(doc)


def test_fingerprint_is_stable_within_process():
    assert schema_fingerprint() == schema_fingerprint()
    assert len(schema_fingerprint()) == 64


def test_write_read_roundtrip(tmp_path):
    reg = MetricsRegistry()
    reg.counter("x").inc(3)
    path = tmp_path / "out" / "metrics.json"
    write_metrics_json(reg, path, meta={"scale": "tiny"})
    doc = read_metrics_json(path)
    assert doc["counters"]["x"] == 3
    assert doc["meta"]["scale"] == "tiny"
    validate_metrics(doc)


def test_schema_cli_dump_check_validate(tmp_path, capsys):
    pinned = tmp_path / "schema.json"
    assert _main(["--dump", str(pinned)]) == 0
    assert json.loads(pinned.read_text()) == METRICS_SCHEMA
    assert _main(["--check", str(pinned)]) == 0
    # drift detection
    drifted = json.loads(pinned.read_text())
    drifted["required"].append("bogus")
    pinned.write_text(json.dumps(drifted))
    assert _main(["--check", str(pinned)]) == 1
    # document validation
    doc_path = tmp_path / "metrics.json"
    doc_path.write_text(json.dumps(full_doc()))
    assert _main(["--validate", str(doc_path)]) == 0
    capsys.readouterr()
