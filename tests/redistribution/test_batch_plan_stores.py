"""Compiled plan programs and the stores' batch (vectorized) interface.

The plan-compilation layer of the batch lane lowers a rank's transfer
schedule into flat numpy arrays once per plan, and the stores consume whole
schedules in one call.  The contract is value-identity with the scalar
methods: same payloads, same wire sizes, same assembled blocks — the batch
lane changes how data is gathered, never what bytes it holds.
"""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.redistribution import (
    CsrStore,
    Dataset,
    DenseStore,
    FieldSpec,
    RedistributionPlan,
    VirtualStore,
)


# ------------------------------------------------------------ PlanProgram
def test_compiled_sends_cached_on_plan():
    plan = RedistributionPlan.block(1000, 4, 2)
    assert plan.compiled_sends(0) is plan.compiled_sends(0)
    assert plan.compiled_recvs(1) is plan.compiled_recvs(1)
    assert plan.compiled_sends(0) is not plan.compiled_sends(1)


def test_compiled_sends_arrays_match_transfer_list():
    plan = RedistributionPlan.block(1000, 2, 4)
    for src in range(2):
        prog = plan.compiled_sends(src)
        transfers = plan.sends_for(src)
        assert list(prog.transfers) == transfers
        assert len(prog) == len(transfers)
        np.testing.assert_array_equal(prog.peers, [t.dst for t in transfers])
        np.testing.assert_array_equal(prog.los, [t.lo for t in transfers])
        np.testing.assert_array_equal(prog.his, [t.hi for t in transfers])
        np.testing.assert_array_equal(prog.counts, prog.his - prog.los)


def test_compiled_recvs_peers_are_sources():
    plan = RedistributionPlan.block(1000, 4, 2)
    for dst in range(2):
        prog = plan.compiled_recvs(dst)
        np.testing.assert_array_equal(
            prog.peers, [t.src for t in plan.recvs_for(dst)]
        )


def test_program_row_take_and_seg_offsets_consistent():
    plan = RedistributionPlan.block(997, 3, 5)  # uneven chunks
    for src in range(3):
        prog = plan.compiled_sends(src)
        # seg_offsets is the prefix sum of the chunk row counts ...
        np.testing.assert_array_equal(
            prog.seg_offsets, np.concatenate([[0], np.cumsum(prog.counts)])
        )
        # ... and row_take holds each chunk's global rows between boundaries.
        for i, t in enumerate(prog.transfers):
            seg = prog.row_take[prog.seg_offsets[i] : prog.seg_offsets[i + 1]]
            np.testing.assert_array_equal(seg, np.arange(t.lo, t.hi))


def test_program_arrays_are_immutable():
    prog = RedistributionPlan.block(100, 2, 4).compiled_sends(0)
    for arr in (prog.peers, prog.los, prog.his, prog.counts,
                prog.seg_offsets, prog.row_take):
        with pytest.raises(ValueError):
            arr[0] = -1


def test_empty_schedule_compiles_to_empty_program():
    # Source 1 of a shrink onto target 0 that only rank 0 feeds.
    plan = RedistributionPlan(np.array([0, 10, 10]), np.array([0, 10]))
    prog = plan.compiled_sends(1)
    assert len(prog) == 0
    assert prog.row_take.shape == (0,)
    np.testing.assert_array_equal(prog.seg_offsets, [0])


# ----------------------------------------------------------- store batches
def _ranges():
    # Overlap-free but unordered ranges, including an empty one.
    return [3, 0, 7, 5], [5, 3, 10, 5]


def test_dense_extract_batch_matches_scalar():
    store = DenseStore(FieldSpec("x", "dense"), 0, 10, np.arange(10.0))
    los, his = _ranges()
    batch = store.extract_batch(los, his)
    for piece, lo, hi in zip(batch, los, his):
        np.testing.assert_array_equal(piece, store.extract(lo, hi))


def test_dense_matrix_rows_extract_batch():
    store = DenseStore(
        FieldSpec("m", "dense", row_shape=(4,)), 5, 15,
        np.arange(40.0).reshape(10, 4),
    )
    batch = store.extract_batch([6, 12], [9, 15])
    np.testing.assert_array_equal(batch[0], store.extract(6, 9))
    np.testing.assert_array_equal(batch[1], store.extract(12, 15))


def test_dense_range_nbytes_batch_matches_scalar():
    store = DenseStore(FieldSpec("x", "dense"), 0, 10, np.arange(10.0))
    los, his = _ranges()
    assert store.range_nbytes_batch(los, his) == [
        store.range_nbytes(lo, hi) for lo, hi in zip(los, his)
    ]


def test_dense_insert_batch_matches_scalar_inserts():
    a = DenseStore(FieldSpec("x", "dense"), 0, 10)
    b = DenseStore(FieldSpec("x", "dense"), 0, 10)
    los, his = [0, 6, 3], [3, 10, 6]
    payloads = [np.arange(float(hi - lo)) + lo for lo, hi in zip(los, his)]
    a.insert_batch(los, his, payloads)
    for lo, hi, p in zip(los, his, payloads):
        b.insert(lo, hi, p)
    np.testing.assert_array_equal(a.data, b.data)


def test_dense_batch_validates_ranges():
    store = DenseStore(FieldSpec("x", "dense"), 5, 10, np.zeros(5))
    with pytest.raises(ValueError):
        store.extract_batch([0], [7])
    with pytest.raises(ValueError):
        store.range_nbytes_batch([5], [11])


def _csr_store(lo=0, hi=12, n_cols=30, seed=3):
    rng = np.random.default_rng(seed)
    m = sp.random(hi - lo, n_cols, density=0.3, random_state=rng, format="csr")
    return CsrStore(FieldSpec("A", "csr"), lo, hi, m), m


def test_csr_extract_batch_matches_scalar():
    store, _ = _csr_store()
    los, his = [2, 0, 8, 5], [5, 2, 12, 5]
    batch = store.extract_batch(los, his)
    for piece, lo, hi in zip(batch, los, his):
        scalar = store.extract(lo, hi)
        assert piece.shape == scalar.shape
        np.testing.assert_allclose(piece.toarray(), scalar.toarray())
        assert piece.indices.dtype == scalar.indices.dtype
        assert piece.indptr.dtype == scalar.indptr.dtype


def test_csr_extract_batch_pieces_do_not_alias_block():
    store, m = _csr_store()
    (piece,) = store.extract_batch([0], [4])
    before = m[0:4].toarray().copy()
    piece.data[:] = -1.0
    np.testing.assert_allclose(store.extract(0, 4).toarray(), before)


def test_csr_range_nbytes_batch_matches_scalar():
    store, _ = _csr_store()
    los, his = [2, 0, 8, 5], [5, 2, 12, 5]
    assert store.range_nbytes_batch(los, his) == [
        store.range_nbytes(lo, hi) for lo, hi in zip(los, his)
    ]


def test_csr_insert_batch_assembles_like_scalar():
    src, m = _csr_store()
    dst = CsrStore(FieldSpec("A", "csr"), 0, 12)
    los, his = [8, 0, 4], [12, 4, 8]  # out of order
    dst.insert_batch(los, his, src.extract_batch(los, his))
    np.testing.assert_allclose(dst.matrix.toarray(), m.toarray())


def test_virtual_store_batch_defaults():
    store = VirtualStore(FieldSpec("blob", "virtual", bytes_per_row=10.0), 0, 20)
    assert store.extract_batch([0, 5], [5, 9]) == [None, None]
    assert store.range_nbytes_batch([0, 5], [5, 9]) == [50, 40]
    store.insert_batch([0, 10], [10, 20], [None, None])
    assert store.complete


# -------------------------------------------------------------- dataset
def _dataset():
    rng = np.random.default_rng(7)
    m = sp.random(10, 20, density=0.25, random_state=rng, format="csr")
    return Dataset.create(
        10,
        (
            FieldSpec("A", "csr", constant=True),
            FieldSpec("x", "dense", constant=False),
        ),
        0, 10,
        data={"A": m, "x": np.arange(10.0)},
    )


def test_dataset_extract_batch_matches_scalar():
    ds = _dataset()
    names = ["A", "x"]
    los, his = [0, 6, 3], [3, 10, 6]
    batch = ds.extract_batch(los, his, names)
    for payloads, lo, hi in zip(batch, los, his):
        scalar = ds.extract(lo, hi, names)
        assert set(payloads) == set(scalar)
        np.testing.assert_allclose(
            payloads["A"].toarray(), scalar["A"].toarray()
        )
        np.testing.assert_array_equal(payloads["x"], scalar["x"])


def test_dataset_range_nbytes_batch_sums_per_store():
    ds = _dataset()
    names = ["A", "x"]
    los, his = [0, 6, 3], [3, 10, 6]
    assert ds.range_nbytes_batch(los, his, names) == [
        ds.range_nbytes(lo, hi, names) for lo, hi in zip(los, his)
    ]


def test_plan_program_drives_store_batches_end_to_end():
    """The wiring the sessions rely on: a compiled send schedule's arrays
    feed the stores directly and reproduce every scalar per-chunk payload."""
    plan = RedistributionPlan.block(10, 1, 3)
    ds = _dataset()
    prog = plan.compiled_sends(0)
    batch = ds.extract_batch(prog.los, prog.his, ["A", "x"])
    sizes = ds.range_nbytes_batch(prog.los, prog.his, ["A", "x"])
    for payloads, nbytes, t in zip(batch, sizes, prog.transfers):
        scalar = ds.extract(t.lo, t.hi, ["A", "x"])
        np.testing.assert_allclose(
            payloads["A"].toarray(), scalar["A"].toarray()
        )
        np.testing.assert_array_equal(payloads["x"], scalar["x"])
        assert nbytes == ds.range_nbytes(t.lo, t.hi, ["A", "x"])
