"""Block-distribution arithmetic: exactness, ownership, overlap merging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.redistribution import (
    block_counts,
    block_offsets,
    block_range,
    owner_of_row,
    range_overlaps,
)


def test_block_counts_even_split():
    np.testing.assert_array_equal(block_counts(12, 4), [3, 3, 3, 3])


def test_block_counts_remainder_goes_to_low_ranks():
    np.testing.assert_array_equal(block_counts(10, 4), [3, 3, 2, 2])


def test_block_counts_more_ranks_than_rows():
    np.testing.assert_array_equal(block_counts(2, 4), [1, 1, 0, 0])


def test_block_offsets_cumulative():
    np.testing.assert_array_equal(block_offsets(10, 4), [0, 3, 6, 8, 10])


def test_block_range():
    assert block_range(10, 4, 0) == (0, 3)
    assert block_range(10, 4, 3) == (8, 10)
    with pytest.raises(ValueError):
        block_range(10, 4, 4)


def test_owner_of_row():
    assert owner_of_row(10, 4, 0) == 0
    assert owner_of_row(10, 4, 2) == 0
    assert owner_of_row(10, 4, 3) == 1
    assert owner_of_row(10, 4, 9) == 3
    with pytest.raises(ValueError):
        owner_of_row(10, 4, 10)


def test_validation():
    with pytest.raises(ValueError):
        block_counts(10, 0)
    with pytest.raises(ValueError):
        block_counts(-1, 2)


def test_range_overlaps_simple():
    a = np.array([0, 5, 10])
    b = np.array([0, 3, 6, 10])
    got = list(range_overlaps(a, b))
    assert got == [(0, 0, 0, 3), (0, 1, 3, 5), (1, 1, 5, 6), (1, 2, 6, 10)]


def test_range_overlaps_mismatched_totals_rejected():
    with pytest.raises(ValueError):
        list(range_overlaps(np.array([0, 5]), np.array([0, 6])))


@given(
    n=st.integers(min_value=0, max_value=10_000),
    p=st.integers(min_value=1, max_value=200),
)
@settings(max_examples=100, deadline=None)
def test_block_partition_is_exact(n, p):
    """Counts sum to n; every count differs by at most 1; offsets monotone."""
    counts = block_counts(n, p)
    assert counts.sum() == n
    assert counts.max() - counts.min() <= 1
    offsets = block_offsets(n, p)
    assert offsets[0] == 0 and offsets[-1] == n
    assert np.all(np.diff(offsets) >= 0)


@given(
    n=st.integers(min_value=1, max_value=2000),
    p=st.integers(min_value=1, max_value=64),
    row_frac=st.floats(min_value=0, max_value=1, exclude_max=True),
)
@settings(max_examples=100, deadline=None)
def test_owner_matches_range(n, p, row_frac):
    row = int(row_frac * n)
    r = owner_of_row(n, p, row)
    lo, hi = block_range(n, p, r)
    assert lo <= row < hi


@given(
    n=st.integers(min_value=0, max_value=5000),
    pa=st.integers(min_value=1, max_value=50),
    pb=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=100, deadline=None)
def test_overlaps_tile_the_row_space_exactly(n, pa, pb):
    """Overlaps are disjoint, ordered, and cover [0, n) exactly once."""
    a = block_offsets(n, pa)
    b = block_offsets(n, pb)
    cursor = 0
    for ra, rb, lo, hi in range_overlaps(a, b):
        assert lo == cursor
        assert hi > lo
        # Consistency with the owning ranges:
        assert a[ra] <= lo and hi <= a[ra + 1]
        assert b[rb] <= lo and hi <= b[rb + 1]
        cursor = hi
    assert cursor == n


@given(
    n=st.integers(min_value=1, max_value=5000),
    pa=st.integers(min_value=1, max_value=50),
    pb=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=60, deadline=None)
def test_overlap_count_bounded_by_sum_of_ranks(n, pa, pb):
    """Block overlap structure is sparse: at most pa + pb - 1 chunks."""
    a = block_offsets(n, pa)
    b = block_offsets(n, pb)
    chunks = list(range_overlaps(a, b))
    assert len(chunks) <= pa + pb - 1


# ----------------------------------------------------------- cache immutability


def test_cached_arrays_are_read_only():
    """The LRU caches hand out shared arrays; in-place mutation must raise
    instead of silently poisoning every later caller."""
    counts = block_counts(10, 4)
    offsets = block_offsets(10, 4)
    for arr in (counts, offsets):
        assert not arr.flags.writeable
        with pytest.raises(ValueError):
            arr[0] = 99
    # The cache really is shared (same object on a repeat call) and intact.
    assert block_counts(10, 4) is counts
    assert block_offsets(10, 4) is offsets
    np.testing.assert_array_equal(counts, [3, 3, 2, 2])
    np.testing.assert_array_equal(offsets, [0, 3, 6, 8, 10])


def test_copy_of_cached_array_is_writable():
    mine = block_counts(10, 4).copy()
    mine[0] = 99  # the documented way to mutate
    np.testing.assert_array_equal(block_counts(10, 4), [3, 3, 2, 2])


def test_cached_plans_expose_read_only_offsets():
    from repro.redistribution import RedistributionPlan

    for plan in (
        RedistributionPlan.block(40, 4, 6),
        RedistributionPlan.movement_minimizing(40, 4, 6),
    ):
        for arr in (plan.src_offsets, plan.dst_offsets):
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[-1] = 0


def test_plan_detaches_from_caller_owned_offsets():
    """Mutating the arrays a plan was built from must not reach the plan."""
    from repro.redistribution import RedistributionPlan

    src = np.array([0, 5, 10], dtype=np.int64)
    dst = np.array([0, 2, 10], dtype=np.int64)
    plan = RedistributionPlan(src, dst)
    src[1] = 7
    dst[1] = 9
    assert plan.src_range(0) == (0, 5)
    assert plan.dst_range(0) == (0, 2)
