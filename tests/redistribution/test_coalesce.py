"""Per-peer message coalescing (opt-in ``coalesce=True``).

Contract: the coalesced schedule delivers bit-identical datasets, moves the
same per-peer data volume (sizes metadata + values piggybacked into one
message), and issues strictly fewer simulated messages than the two-message
Algorithm 1/2 schedules.
"""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.obs import MetricsProbe, MetricsRegistry
from repro.redistribution import (
    Dataset,
    FieldSpec,
    RedistMethod,
    RedistributionPlan,
    make_session,
)
from repro.smpi import run_spmd

N_ROWS = 48


def specs():
    return (
        FieldSpec("A", "csr", constant=True),
        FieldSpec("x", "dense", constant=False),
    )


def global_matrix():
    rng = np.random.default_rng(7)
    return sp.random(N_ROWS, 20, density=0.25, random_state=rng, format="csr")


def global_vector():
    return np.arange(N_ROWS, dtype=np.float64) * 0.5


def _main(mpi, method, ns, nt, coalesce, driving):
    plan = RedistributionPlan.block(N_ROWS, ns, nt)
    r = mpi.rank
    src_rank = r if r < ns else None
    dst_rank = r if r < nt else None
    if src_rank is None and dst_rank is None:
        return None
    src_ds = None
    if src_rank is not None:
        lo, hi = plan.src_range(src_rank)
        src_ds = Dataset.create(
            N_ROWS, specs(), lo, hi,
            data={"A": global_matrix()[lo:hi], "x": global_vector()[lo:hi]},
        )
    dst_ds = None
    if dst_rank is not None:
        lo, hi = plan.dst_range(dst_rank)
        dst_ds = Dataset.create(N_ROWS, specs(), lo, hi)
    session = make_session(
        method, mpi, mpi.comm_world, plan,
        names=["A", "x"],
        src_rank=src_rank, dst_rank=dst_rank,
        src_dataset=src_ds, dst_dataset=dst_ds,
        coalesce=coalesce,
    )
    if driving == "blocking":
        yield from session.run_blocking()
    else:
        yield from session.start()
        while not (yield from session.test()):
            yield from mpi.compute(1e-4)
    if dst_rank is not None:
        lo, hi = plan.dst_range(dst_rank)
        return (
            session.dst_dataset.stores["A"].matrix.toarray().tobytes(),
            session.dst_dataset.stores["x"].data.tobytes(),
            lo, hi,
        )
    return None


def _run(method, ns, nt, coalesce, driving="blocking"):
    """Run one redistribution; returns (per-rank results, metrics registry)."""
    from repro.cluster import Machine
    from repro.cluster.fabrics import ETHERNET_10G
    from repro.simulate import Simulator
    from repro.smpi import MpiWorld

    sim = Simulator()
    machine = Machine(sim, 4, 2, ETHERNET_10G, seed=0)
    world = MpiWorld(machine)
    registry = MetricsRegistry()
    probe = MetricsProbe(registry).attach(machine, world)
    res = world.launch(
        _main, slots=range(max(ns, nt)),
        args=(method, ns, nt, coalesce, driving),
    )
    sim.run()
    probe.detach()
    return [p.result for p in res.procs], registry


def _counter_total(registry, prefix):
    return sum(
        c.value for key, c in registry.counters.items() if key.startswith(prefix)
    )


def _msg_counts(registry):
    return _counter_total(registry, "smpi.messages")


def _moved_bytes(registry):
    return _counter_total(registry, "smpi.bytes")


CASES = [(4, 2), (2, 4), (3, 3)]


@pytest.mark.parametrize("method", [RedistMethod.P2P, RedistMethod.COL])
@pytest.mark.parametrize("ns,nt", CASES)
def test_coalesced_delivers_identical_data(method, ns, nt):
    plain, _ = _run(method, ns, nt, coalesce=False)
    coal, _ = _run(method, ns, nt, coalesce=True)
    assert [r for r in plain if r] == [r for r in coal if r]
    # and the delivered data matches the global source of truth
    for r in coal:
        if r is None:
            continue
        a, x, lo, hi = r
        np.testing.assert_array_equal(
            np.frombuffer(x), global_vector()[lo:hi]
        )
        assert a == global_matrix()[lo:hi].toarray().tobytes()


@pytest.mark.parametrize("method", [RedistMethod.P2P, RedistMethod.COL])
def test_coalesced_issues_fewer_messages(method):
    ns, nt = 4, 2
    _, plain_reg = _run(method, ns, nt, coalesce=False)
    _, coal_reg = _run(method, ns, nt, coalesce=True)
    assert _msg_counts(coal_reg) < _msg_counts(plain_reg)


def test_coalesced_p2p_same_modeled_bytes():
    """P2P coalescing is byte-exact: sizes+values bytes ride one message."""
    ns, nt = 4, 2
    _, plain_reg = _run(RedistMethod.P2P, ns, nt, coalesce=False)
    _, coal_reg = _run(RedistMethod.P2P, ns, nt, coalesce=True)
    assert _moved_bytes(coal_reg) == pytest.approx(_moved_bytes(plain_reg))


@pytest.mark.parametrize("method", [RedistMethod.P2P, RedistMethod.COL])
def test_coalesced_test_driven(method):
    """The Algorithm-3 start()/test() driving style works coalesced too."""
    ns, nt = 3, 3
    coal, _ = _run(method, ns, nt, coalesce=True, driving="testing")
    for r in coal:
        if r is None:
            continue
        a, x, lo, hi = r
        np.testing.assert_array_equal(np.frombuffer(x), global_vector()[lo:hi])
