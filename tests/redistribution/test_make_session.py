"""The ``make_session`` factory and the unified tolerant parsers."""

import pytest

from repro.redistribution import (
    RedistMethod,
    RedistributionPlan,
    Strategy,
    make_session,
)
from repro.redistribution.api import parse_choice
from repro.redistribution.collective import ColRedistribution
from repro.redistribution.p2p import P2PRedistribution
from repro.redistribution.rma import RmaRedistribution
from repro.malleability import SpawnMethod


PLAN = RedistributionPlan.block(64, 2, 4)
DATA = object()  # the factory validates presence, not type


def build(method, **kw):
    kw.setdefault("src_rank", 0)
    kw.setdefault("src_dataset", DATA)
    return make_session(
        method, ctx=None, comm=None, plan=PLAN, names=["x"], **kw
    )


# ------------------------------------------------------------------ factory
@pytest.mark.parametrize(
    "text,cls",
    [
        ("p2p", P2PRedistribution),
        ("P2P", P2PRedistribution),
        ("point-to-point", P2PRedistribution),
        ("col", ColRedistribution),
        ("Collective", ColRedistribution),
        (RedistMethod.COL, ColRedistribution),
        ("RMA", RmaRedistribution),
        ("one_sided", RmaRedistribution),
    ],
)
def test_factory_resolves_every_method(text, cls):
    session = build(text)
    assert type(session) is cls
    assert session.method_name in ("p2p", "col", "rma")


def test_factory_unknown_method_lists_choices():
    with pytest.raises(ValueError, match=r"valid choices: P2P, COL, RMA"):
        build("carrier-pigeon")


def test_factory_role_validation():
    with pytest.raises(ValueError, match="at least one role"):
        make_session("p2p", None, None, PLAN, ["x"])
    with pytest.raises(ValueError, match="source role needs"):
        make_session("p2p", None, None, PLAN, ["x"], src_rank=0)
    with pytest.raises(ValueError, match="target role needs"):
        make_session("p2p", None, None, PLAN, ["x"], dst_rank=1)
    with pytest.raises(ValueError, match="empty field list"):
        make_session(
            "p2p", None, None, PLAN, [], src_rank=0, src_dataset=DATA
        )


# ------------------------------------------------------------------ parsers
@pytest.mark.parametrize(
    "text,want",
    [
        ("p2p", RedistMethod.P2P),
        ("P-2-P", RedistMethod.P2P),
        ("COL", RedistMethod.COL),
        (" collective ", RedistMethod.COL),
        ("rma", RedistMethod.RMA),
        ("One Sided", RedistMethod.RMA),
    ],
)
def test_redist_method_parse(text, want):
    assert RedistMethod.parse(text) is want


@pytest.mark.parametrize(
    "text,want",
    [
        ("s", Strategy.SYNC),
        ("Sync", Strategy.SYNC),
        ("A", Strategy.ASYNC_NONBLOCKING),
        ("non-blocking", Strategy.ASYNC_NONBLOCKING),
        ("T", Strategy.ASYNC_THREAD),
        ("async_thread", Strategy.ASYNC_THREAD),
    ],
)
def test_strategy_parse(text, want):
    assert Strategy.parse(text) is want


@pytest.mark.parametrize(
    "text,want",
    [
        ("baseline", SpawnMethod.BASELINE),
        ("Baseline", SpawnMethod.BASELINE),
        ("MERGE", SpawnMethod.MERGE),
        ("merge ", SpawnMethod.MERGE),
    ],
)
def test_spawn_method_parse(text, want):
    assert SpawnMethod.parse(text) is want


@pytest.mark.parametrize(
    "parse,match",
    [
        (RedistMethod.parse,
         r"unknown redistribution method 'bogus'; valid choices: P2P, COL, "
         r"RMA \(aliases: point-to-point, collective, one-sided\)"),
        (Strategy.parse,
         r"unknown strategy 'bogus'; valid choices: S, A, T "
         r"\(aliases: sync, async, non-blocking, thread\)"),
        (SpawnMethod.parse,
         r"unknown spawn method 'bogus'; valid choices: Baseline, Merge$"),
    ],
)
def test_parse_errors_are_uniform(parse, match):
    """Golden strings: every axis fails with the same vocabulary, and the
    axes with long-form aliases list them in a uniform trailing clause."""
    with pytest.raises(ValueError, match=match):
        parse("bogus")


def test_parse_choice_is_the_shared_helper():
    table = {"x": 1, "yz": 2}
    assert parse_choice("X-", table, "thing", ("x", "yz")) == 1
    assert parse_choice("Y_Z", table, "thing", ("x", "yz")) == 2
    with pytest.raises(ValueError, match="unknown thing 'q'"):
        parse_choice("q", table, "thing", ("x", "yz"))
