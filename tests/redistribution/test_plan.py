"""Redistribution plan structure and the movement-minimising extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.redistribution import (
    RedistributionPlan,
    block_offsets,
    movement_minimizing_offsets,
)


def test_block_plan_shapes():
    plan = RedistributionPlan.block(100, 4, 2)
    assert plan.n_sources == 4 and plan.n_targets == 2 and plan.n_rows == 100
    # 4 sources of 25 rows -> 2 targets of 50 rows: each target gets 2 chunks.
    assert [t.src for t in plan.recvs_for(0)] == [0, 1]
    assert [t.src for t in plan.recvs_for(1)] == [2, 3]
    assert [t.dst for t in plan.sends_for(0)] == [0]


def test_expansion_plan():
    plan = RedistributionPlan.block(100, 2, 4)
    assert [t.dst for t in plan.sends_for(0)] == [0, 1]
    assert [t.dst for t in plan.sends_for(1)] == [2, 3]
    for t in range(4):
        recvs = plan.recvs_for(t)
        assert sum(tr.n_rows for tr in recvs) == 25


def test_self_rows_when_groups_overlap():
    """NS=2 -> NT=4 over 100 rows: source 0 owns [0,50) and target 0 owns
    [0,25), so rank 0 keeps 25 rows; source 1 owns [50,100) but target 1
    owns [25,50) — disjoint, so rank 1 keeps nothing."""
    plan = RedistributionPlan.block(100, 2, 4)
    assert plan.self_rows(0) == 25
    assert plan.self_rows(1) == 0
    assert plan.self_rows(3) == 0  # pure target


def test_identity_plan_moves_nothing():
    plan = RedistributionPlan.block(100, 4, 4)
    assert plan.moved_rows() == 0
    for r in range(4):
        assert plan.self_rows(r) == 25


def test_invalid_offsets_rejected():
    with pytest.raises(ValueError):
        RedistributionPlan(np.array([1, 5]), np.array([0, 5]))
    with pytest.raises(ValueError):
        RedistributionPlan(np.array([0, 5, 3]), np.array([0, 5]))
    with pytest.raises(ValueError):
        RedistributionPlan(np.array([0, 5]), np.array([0, 6]))


def test_rank_bounds_checked():
    plan = RedistributionPlan.block(10, 2, 3)
    with pytest.raises(ValueError):
        plan.sends_for(2)
    with pytest.raises(ValueError):
        plan.recvs_for(3)


@given(
    n=st.integers(min_value=1, max_value=5000),
    ns=st.integers(min_value=1, max_value=40),
    nt=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=80, deadline=None)
def test_plan_conservation(n, ns, nt):
    """Every row leaves exactly one source and reaches exactly one target."""
    plan = RedistributionPlan.block(n, ns, nt)
    sent = sum(tr.n_rows for s in range(ns) for tr in plan.sends_for(s))
    received = sum(tr.n_rows for t in range(nt) for tr in plan.recvs_for(t))
    assert sent == n
    assert received == n
    # Per-target: receives tile the target range exactly.
    for t in range(nt):
        lo, hi = plan.dst_range(t)
        cursor = lo
        for tr in plan.recvs_for(t):
            assert tr.lo == cursor
            cursor = tr.hi
        assert cursor == hi


@given(
    n=st.integers(min_value=1, max_value=5000),
    ns=st.integers(min_value=1, max_value=40),
    nt=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=80, deadline=None)
def test_send_recv_views_agree(n, ns, nt):
    plan = RedistributionPlan.block(n, ns, nt)
    by_send = {(tr.src, tr.dst, tr.lo, tr.hi)
               for s in range(ns) for tr in plan.sends_for(s)}
    by_recv = {(tr.src, tr.dst, tr.lo, tr.hi)
               for t in range(nt) for tr in plan.recvs_for(t)}
    assert by_send == by_recv


# ------------------------------------------------- movement-minimising mode
@given(
    n=st.integers(min_value=1, max_value=5000),
    ns=st.integers(min_value=1, max_value=30),
    nt=st.integers(min_value=1, max_value=30),
    slack=st.floats(min_value=0.0, max_value=2.0),
)
@settings(max_examples=80, deadline=None)
def test_movement_minimizing_offsets_valid_partition(n, ns, nt, slack):
    off = movement_minimizing_offsets(n, ns, nt, slack)
    assert off[0] == 0 and off[-1] == n
    assert np.all(np.diff(off) >= 0)
    assert len(off) == nt + 1


@given(
    n=st.integers(min_value=100, max_value=5000),
    ns=st.integers(min_value=1, max_value=20),
    nt=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=60, deadline=None)
def test_movement_minimizing_never_moves_more_than_block(n, ns, nt):
    """The extension's whole point: moved rows <= balanced block plan."""
    base = RedistributionPlan.block(n, ns, nt)
    opt = RedistributionPlan.movement_minimizing(n, ns, nt, slack=0.5)
    assert opt.moved_rows() <= base.moved_rows()


def test_movement_minimizing_identity_is_free():
    opt = RedistributionPlan.movement_minimizing(1000, 4, 4, slack=0.5)
    assert opt.moved_rows() == 0


def test_movement_minimizing_keeps_persisting_data_on_expand():
    """2 -> 4 over 100 rows with generous slack: ranks 0,1 keep more than
    the balanced 25 rows each."""
    off = movement_minimizing_offsets(100, 2, 4, slack=0.5)
    counts = np.diff(off)
    assert counts[0] > 25 or counts[1] > 25
    plan = RedistributionPlan(block_offsets(100, 2), off)
    base = RedistributionPlan.block(100, 2, 4)
    assert plan.moved_rows() < base.moved_rows()
