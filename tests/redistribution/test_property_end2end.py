"""Property-based end-to-end redistribution over simulated MPI.

For arbitrary (n_rows, NS, NT) and any method, every target must end up
with exactly its block of the global vector — the fundamental correctness
contract of Stage 3.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.redistribution import (
    Dataset,
    FieldSpec,
    RedistMethod,
    RedistributionPlan,
)
from repro.redistribution.api import make_session
from repro.smpi import run_spmd

SPECS = (FieldSpec("v", "dense", constant=True),)


def run_redistribution(n_rows, ns, nt, method):
    plan = RedistributionPlan.block(n_rows, ns, nt)
    global_v = np.arange(n_rows, dtype=np.float64) * 3.0 + 1.0

    def main(mpi):
        r = mpi.rank
        src = r if r < ns else None
        dst = r if r < nt else None
        if src is None and dst is None:
            return None
        src_ds = None
        if src is not None:
            lo, hi = plan.src_range(src)
            src_ds = Dataset.create(
                n_rows, SPECS, lo, hi, data={"v": global_v[lo:hi]}
            )
        dst_ds = (
            Dataset.create(n_rows, SPECS, *plan.dst_range(dst))
            if dst is not None
            else None
        )
        session = make_session(
            method, mpi, mpi.comm_world, plan, names=["v"],
            src_rank=src, dst_rank=dst, src_dataset=src_ds, dst_dataset=dst_ds,
        )
        yield from session.run_blocking()
        if dst is not None:
            return dst_ds.stores["v"].data.copy()
        return None

    results, _ = run_spmd(main, max(ns, nt), n_nodes=4, cores_per_node=2)
    for t in range(nt):
        lo, hi = plan.dst_range(t)
        np.testing.assert_array_equal(results[t], global_v[lo:hi])


@given(
    n_rows=st.integers(min_value=1, max_value=500),
    ns=st.integers(min_value=1, max_value=7),
    nt=st.integers(min_value=1, max_value=7),
    method=st.sampled_from([RedistMethod.P2P, RedistMethod.COL, RedistMethod.RMA]),
)
@settings(max_examples=25, deadline=None)
def test_any_shape_any_method_delivers_exact_blocks(n_rows, ns, nt, method):
    run_redistribution(n_rows, ns, nt, method)


@given(
    n_rows=st.integers(min_value=10, max_value=300),
    ns=st.integers(min_value=1, max_value=6),
    nt=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=15, deadline=None)
def test_movement_minimizing_plan_delivers_exact_blocks(n_rows, ns, nt):
    plan = RedistributionPlan.movement_minimizing(n_rows, ns, nt)
    global_v = np.arange(n_rows, dtype=np.float64)

    def main(mpi):
        r = mpi.rank
        src = r if r < ns else None
        dst = r if r < nt else None
        if src is None and dst is None:
            return None
        src_ds = None
        if src is not None:
            lo, hi = plan.src_range(src)
            src_ds = Dataset.create(n_rows, SPECS, lo, hi, data={"v": global_v[lo:hi]})
        dst_ds = (
            Dataset.create(n_rows, SPECS, *plan.dst_range(dst))
            if dst is not None else None
        )
        session = make_session(
            RedistMethod.P2P, mpi, mpi.comm_world, plan, names=["v"],
            src_rank=src, dst_rank=dst, src_dataset=src_ds, dst_dataset=dst_ds,
        )
        yield from session.run_blocking()
        return dst_ds.stores["v"].data.copy() if dst is not None else None

    results, _ = run_spmd(main, max(ns, nt), n_nodes=4, cores_per_node=2)
    for t in range(nt):
        lo, hi = plan.dst_range(t)
        np.testing.assert_array_equal(results[t], global_v[lo:hi])
