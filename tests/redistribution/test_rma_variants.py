"""RMA variant axis: origin-driven puts vs target-driven gets.

Both directions must deliver bit-identical data over both layouts; the
factory owns the variant vocabulary (aliases, golden errors) and the
session rejects options that don't compose (coalesce).
"""

import numpy as np
import pytest

from repro.redistribution import RedistributionPlan, make_session
from repro.redistribution.rma import RMA_VARIANTS, RmaRedistribution
from repro.smpi import run_spmd

from .test_sessions import (
    N_ROWS,
    check_target,
    source_dataset,
    target_dataset,
)


def merge_style_main(mpi, variant, ns, nt, driving):
    plan = RedistributionPlan.block(N_ROWS, ns, nt)
    r = mpi.rank
    src_rank = r if r < ns else None
    dst_rank = r if r < nt else None
    if src_rank is None and dst_rank is None:
        return "idle"
    session = make_session(
        "rma",
        mpi,
        mpi.comm_world,
        plan,
        names=["A", "x", "blob"],
        src_rank=src_rank,
        dst_rank=dst_rank,
        src_dataset=source_dataset(plan, src_rank) if src_rank is not None else None,
        dst_dataset=target_dataset(plan, dst_rank) if dst_rank is not None else None,
        variant=variant,
    )
    if driving == "blocking":
        yield from session.run_blocking()
    else:
        yield from session.start()
        while not (yield from session.test()):
            yield from mpi.compute(1e-4)
    if dst_rank is not None:
        check_target(session.dst_dataset, plan, dst_rank)
        return "target-ok"
    return "source-done"


@pytest.mark.parametrize("variant", RMA_VARIANTS)
@pytest.mark.parametrize("ns,nt", [(4, 2), (2, 4), (3, 3), (1, 4), (4, 1)])
def test_both_variants_deliver_merge_style(variant, ns, nt):
    p = max(ns, nt)
    results, _ = run_spmd(
        merge_style_main, p, args=(variant, ns, nt, "blocking"),
        n_nodes=4, cores_per_node=2,
    )
    assert results.count("target-ok") == nt


@pytest.mark.parametrize("variant", RMA_VARIANTS)
@pytest.mark.parametrize("ns,nt", [(4, 2), (2, 4)])
def test_both_variants_deliver_test_driven(variant, ns, nt):
    p = max(ns, nt)
    results, _ = run_spmd(
        merge_style_main, p, args=(variant, ns, nt, "testing"),
        n_nodes=4, cores_per_node=2,
    )
    assert results.count("target-ok") == nt


def test_variants_move_same_rows_opposite_drivers():
    """The observable difference is who issues ops, not what arrives: both
    variants leave every target holding the same bytes."""
    ns, nt = 3, 2

    def run(variant):
        results, sim = run_spmd(
            merge_style_main, max(ns, nt), args=(variant, ns, nt, "blocking"),
            n_nodes=3, cores_per_node=2,
        )
        return results

    assert run("origin") == run("target")


# ----------------------------------------------------------------- factory
PLAN = RedistributionPlan.block(64, 2, 4)
DATA = object()


def build(**kw):
    kw.setdefault("src_rank", 0)
    kw.setdefault("src_dataset", DATA)
    return make_session("rma", ctx=None, comm=None, plan=PLAN, names=["x"], **kw)


@pytest.mark.parametrize(
    "text,want",
    [
        ("origin", "origin"),
        ("Origin-Driven", "origin"),
        ("PUT", "origin"),
        ("target", "target"),
        ("target_driven", "target"),
        ("get", "target"),
    ],
)
def test_variant_aliases(text, want):
    session = build(variant=text)
    assert type(session) is RmaRedistribution
    assert session.variant == want


def test_default_variant_is_origin():
    assert build().variant == "origin"


def test_unknown_variant_golden_error():
    with pytest.raises(
        ValueError,
        match=r"unknown RMA variant 'sideways'; valid choices: "
              r"origin, target \(aliases: origin-driven, put, "
              r"target-driven, get\)",
    ):
        build(variant="sideways")


def test_variant_rejected_for_two_sided_methods():
    with pytest.raises(
        ValueError, match=r"variant='target' only applies to the RMA method, not COL"
    ):
        make_session(
            "col", None, None, PLAN, ["x"],
            src_rank=0, src_dataset=DATA, variant="target",
        )


def test_coalesce_rejected_for_rma():
    with pytest.raises(ValueError, match="coalesce does not apply to the RMA"):
        build(coalesce=True)
