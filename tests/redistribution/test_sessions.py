"""End-to-end redistribution over simulated MPI.

Every combination of {P2P, COL, RMA} x {merge-style intra, baseline-style
inter} x {blocking, test-driven} must deliver bit-identical data.
"""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.redistribution import (
    Dataset,
    FieldSpec,
    RedistMethod,
    RedistributionPlan,
    make_session,
)
from repro.smpi import run_spmd

N_ROWS = 60
N_COLS = 30


def specs():
    return (
        FieldSpec("A", "csr", constant=True),
        FieldSpec("x", "dense", constant=False),
        FieldSpec("blob", "virtual", constant=True, bytes_per_row=500.0),
    )


def global_matrix():
    rng = np.random.default_rng(42)
    return sp.random(N_ROWS, N_COLS, density=0.3, random_state=rng, format="csr")


def global_vector():
    return np.arange(N_ROWS, dtype=np.float64) * 1.5


def source_dataset(plan, s):
    lo, hi = plan.src_range(s)
    return Dataset.create(
        N_ROWS, specs(), lo, hi,
        data={"A": global_matrix()[lo:hi], "x": global_vector()[lo:hi]},
        fill_virtual=True,
    )


def target_dataset(plan, t):
    lo, hi = plan.dst_range(t)
    return Dataset.create(N_ROWS, specs(), lo, hi)


def check_target(ds, plan, t):
    lo, hi = plan.dst_range(t)
    np.testing.assert_allclose(
        ds.stores["A"].matrix.toarray(), global_matrix()[lo:hi].toarray()
    )
    np.testing.assert_array_equal(ds.stores["x"].data, global_vector()[lo:hi])
    assert ds.stores["blob"].complete


def merge_style_main(mpi, method, ns, nt, driving):
    """All ranks share one intra-comm; ranks < ns are sources, < nt targets."""
    plan = RedistributionPlan.block(N_ROWS, ns, nt)
    r = mpi.rank
    src_rank = r if r < ns else None
    dst_rank = r if r < nt else None
    if src_rank is None and dst_rank is None:
        return "idle"
    session = make_session(
        method,
        mpi,
        mpi.comm_world,
        plan,
        names=["A", "x", "blob"],
        src_rank=src_rank,
        dst_rank=dst_rank,
        src_dataset=source_dataset(plan, src_rank) if src_rank is not None else None,
        dst_dataset=target_dataset(plan, dst_rank) if dst_rank is not None else None,
    )
    if driving == "blocking":
        yield from session.run_blocking()
    else:  # test-driven (strategy A shape)
        yield from session.start()
        while not (yield from session.test()):
            yield from mpi.compute(1e-4)
    if dst_rank is not None:
        check_target(session.dst_dataset, plan, dst_rank)
        return "target-ok"
    return "source-done"


MERGE_CASES = [(4, 2), (2, 4), (3, 5), (5, 3), (4, 4), (1, 5), (5, 1)]


@pytest.mark.parametrize("method", [RedistMethod.P2P, RedistMethod.COL, RedistMethod.RMA])
@pytest.mark.parametrize("ns,nt", MERGE_CASES)
def test_merge_style_blocking(method, ns, nt):
    p = max(ns, nt)
    results, _ = run_spmd(
        merge_style_main, p, args=(method, ns, nt, "blocking"),
        n_nodes=4, cores_per_node=2,
    )
    assert all(r in ("target-ok", "source-done") for r in results)
    assert results.count("target-ok") == nt


@pytest.mark.parametrize("method", [RedistMethod.P2P, RedistMethod.COL, RedistMethod.RMA])
@pytest.mark.parametrize("ns,nt", [(4, 2), (2, 4), (3, 3)])
def test_merge_style_test_driven(method, ns, nt):
    """Strategy-A shape: sources/targets drive the session with test()."""
    p = max(ns, nt)
    results, _ = run_spmd(
        merge_style_main, p, args=(method, ns, nt, "testing"),
        n_nodes=4, cores_per_node=2,
    )
    assert results.count("target-ok") == nt


def baseline_style_main(mpi, method, ns, nt, driving):
    """Sources spawn nt children and redistribute over the inter-comm."""
    plan = RedistributionPlan.block(N_ROWS, ns, nt)

    def child(cmpi):
        t = cmpi.rank
        session = make_session(
            method, cmpi, cmpi.parent, plan,
            names=["A", "x", "blob"],
            dst_rank=t,
            dst_dataset=target_dataset(plan, t),
        )
        if driving == "blocking":
            yield from session.run_blocking()
        else:
            # Async strategies: every rank must enter the same non-blocking
            # collectives; targets just wait on them immediately (§3.2).
            yield from session.start()
            yield from session.finish()
        check_target(session.dst_dataset, plan, t)
        cmpi.finalize()
        return "child-ok"

    inter = yield from mpi.comm_spawn(child, slots=range(ns, ns + nt))
    s = mpi.rank
    session = make_session(
        method, mpi, inter, plan,
        names=["A", "x", "blob"],
        src_rank=s,
        src_dataset=source_dataset(plan, s),
    )
    if driving == "blocking":
        yield from session.run_blocking()
    else:
        yield from session.start()
        while not (yield from session.test()):
            yield from mpi.compute(1e-4)
    return "source-done"


@pytest.mark.parametrize("method", [RedistMethod.P2P, RedistMethod.COL, RedistMethod.RMA])
@pytest.mark.parametrize("ns,nt", [(2, 3), (3, 2), (2, 2)])
def test_baseline_style_blocking(method, ns, nt):
    results, sim = run_spmd(
        baseline_style_main, ns, args=(method, ns, nt, "blocking"),
        n_nodes=4, cores_per_node=2,
    )
    assert results == ["source-done"] * ns
    child_results = [
        p.result for p in sim._processes if p.name.startswith("spawned")
    ]
    assert child_results == ["child-ok"] * nt


@pytest.mark.parametrize("method", [RedistMethod.P2P, RedistMethod.COL])
def test_baseline_style_async_sources(method):
    ns, nt = 3, 2
    results, sim = run_spmd(
        baseline_style_main, ns, args=(method, ns, nt, "testing"),
        n_nodes=4, cores_per_node=2,
    )
    assert results == ["source-done"] * ns


def test_thread_driven_redistribution():
    """Strategy-T shape: an aux thread runs the blocking session while the
    main flow computes; data must still arrive intact."""
    ns, nt = 3, 2
    method = RedistMethod.P2P

    def main(mpi):
        plan = RedistributionPlan.block(N_ROWS, ns, nt)
        r = mpi.rank
        src_rank = r if r < ns else None
        dst_rank = r if r < nt else None
        session = make_session(
            method, mpi, mpi.comm_world, plan,
            names=["A", "x", "blob"],
            src_rank=src_rank,
            dst_rank=dst_rank,
            src_dataset=source_dataset(plan, src_rank) if src_rank is not None else None,
            dst_dataset=target_dataset(plan, dst_rank) if dst_rank is not None else None,
        )

        def comm_thread(tmpi):
            yield from session.run_blocking()
            return "thread-done"

        handle = yield from mpi.spawn_thread(comm_thread)
        iterations = 0
        while not handle.finished:
            yield from mpi.compute(1e-3)
            iterations += 1
        if dst_rank is not None:
            check_target(session.dst_dataset, plan, dst_rank)
        return iterations

    results, _ = run_spmd(main, max(ns, nt), n_nodes=3, cores_per_node=2)
    assert all(isinstance(r, int) for r in results)


def test_session_validation():
    from repro.redistribution import P2PRedistribution

    plan = RedistributionPlan.block(10, 2, 2)
    with pytest.raises(ValueError, match="at least one role"):
        P2PRedistribution(None, None, plan, ["x"])
    with pytest.raises(ValueError, match="source dataset"):
        P2PRedistribution(None, None, plan, ["x"], src_rank=0)
    with pytest.raises(ValueError, match="empty field list"):
        P2PRedistribution(None, None, plan, [], src_rank=0, src_dataset=object())
