"""Store behaviour: dense, CSR, virtual; dataset assembly and accounting."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.redistribution import (
    CsrStore,
    Dataset,
    DenseStore,
    FieldSpec,
    VirtualStore,
    make_store,
)


def dense_spec(name="x", constant=True, row_shape=()):
    return FieldSpec(name=name, kind="dense", constant=constant, row_shape=row_shape)


# ------------------------------------------------------------------- dense
def test_dense_vector_roundtrip():
    store = DenseStore(dense_spec(), 10, 20, np.arange(10.0))
    np.testing.assert_array_equal(store.extract(12, 15), [2.0, 3.0, 4.0])
    assert store.range_nbytes(12, 15) == 3 * 8


def test_dense_matrix_rows():
    spec = dense_spec(row_shape=(4,))
    store = DenseStore(spec, 0, 5, np.ones((5, 4)))
    assert store.range_nbytes(0, 2) == 2 * 4 * 8
    assert store.extract(1, 3).shape == (2, 4)


def test_dense_insert():
    store = DenseStore(dense_spec(), 0, 10)
    store.insert(3, 6, np.array([7.0, 8.0, 9.0]))
    np.testing.assert_array_equal(store.data[3:6], [7.0, 8.0, 9.0])


def test_dense_range_validation():
    store = DenseStore(dense_spec(), 10, 20)
    with pytest.raises(ValueError):
        store.extract(5, 15)
    with pytest.raises(ValueError):
        store.insert(15, 25, np.zeros(10))


def test_dense_shape_validation():
    with pytest.raises(ValueError):
        DenseStore(dense_spec(), 0, 5, np.zeros(4))


# --------------------------------------------------------------------- csr
def make_csr_block(lo, hi, n_cols=50, seed=0):
    rng = np.random.default_rng(seed)
    m = sp.random(hi - lo, n_cols, density=0.2, random_state=rng, format="csr")
    return m


def test_csr_extract_and_nbytes():
    m = make_csr_block(0, 10)
    store = CsrStore(FieldSpec("A", "csr"), 0, 10, m)
    piece = store.extract(2, 5)
    np.testing.assert_allclose(piece.toarray(), m[2:5].toarray())
    assert store.range_nbytes(2, 5) > 0
    # nbytes scales with nnz, not just rows:
    empty_rows = sp.csr_matrix((10, 50))
    store2 = CsrStore(FieldSpec("B", "csr"), 0, 10, empty_rows)
    assert store2.range_nbytes(2, 5) < store.range_nbytes(2, 5)


def test_csr_piecewise_assembly():
    m = make_csr_block(0, 10)
    src = CsrStore(FieldSpec("A", "csr"), 0, 10, m)
    dst = CsrStore(FieldSpec("A", "csr"), 0, 10)
    # Insert out of order.
    dst.insert(6, 10, src.extract(6, 10))
    dst.insert(0, 3, src.extract(0, 3))
    dst.insert(3, 6, src.extract(3, 6))
    np.testing.assert_allclose(dst.matrix.toarray(), m.toarray())


def test_csr_incomplete_assembly_detected():
    dst = CsrStore(FieldSpec("A", "csr"), 0, 10)
    dst.insert(0, 3, make_csr_block(0, 3))
    with pytest.raises(RuntimeError, match="gap|missing"):
        _ = dst.matrix


def test_csr_empty_store_rejects_reads():
    dst = CsrStore(FieldSpec("A", "csr"), 0, 10)
    with pytest.raises(RuntimeError):
        _ = dst.matrix


def test_csr_row_count_validated():
    with pytest.raises(ValueError):
        CsrStore(FieldSpec("A", "csr"), 0, 10, make_csr_block(0, 5))


# ----------------------------------------------------------------- virtual
def test_virtual_accounting():
    spec = FieldSpec("blob", "virtual", bytes_per_row=100.0)
    store = VirtualStore(spec, 0, 50)
    assert store.range_nbytes(0, 10) == 1000
    assert store.extract(0, 10) is None
    assert not store.complete
    store.insert(0, 30, None)
    store.insert(30, 50, None)
    assert store.complete
    assert store.bytes_received == 5000


def test_virtual_incomplete_with_gap():
    spec = FieldSpec("blob", "virtual", bytes_per_row=1.0)
    store = VirtualStore(spec, 0, 10)
    store.insert(0, 4, None)
    store.insert(6, 10, None)
    assert not store.complete


def test_virtual_filled_at_creation():
    spec = FieldSpec("blob", "virtual", bytes_per_row=1.0)
    store = VirtualStore(spec, 5, 10, filled=True)
    assert store.complete


def test_empty_block_is_complete():
    spec = FieldSpec("blob", "virtual", bytes_per_row=1.0)
    assert VirtualStore(spec, 5, 5).complete


# ----------------------------------------------------------------- dataset
def cg_like_specs():
    return (
        FieldSpec("A", "csr", constant=True),
        FieldSpec("x", "dense", constant=False),
        FieldSpec("b", "dense", constant=True),
    )


def test_dataset_create_with_data():
    m = make_csr_block(0, 10)
    ds = Dataset.create(
        20, cg_like_specs(), 0, 10,
        data={"A": m, "x": np.zeros(10), "b": np.ones(10)},
    )
    assert ds.field_names() == ["A", "x", "b"]
    assert ds.field_names(constant=True) == ["A", "b"]
    assert ds.field_names(constant=False) == ["x"]
    assert ds.total_nbytes() > 0


def test_dataset_empty_target_side():
    ds = Dataset.create(20, cg_like_specs(), 10, 20)
    assert isinstance(ds.stores["A"], CsrStore)
    assert isinstance(ds.stores["x"], DenseStore)


def test_dataset_constant_fraction():
    specs = (
        FieldSpec("big", "virtual", constant=True, bytes_per_row=96.6),
        FieldSpec("small", "virtual", constant=False, bytes_per_row=3.4),
    )
    ds = Dataset.create(100, specs, 0, 100, fill_virtual=True)
    assert ds.constant_fraction() == pytest.approx(0.966)


def test_dataset_extract_insert_roundtrip():
    ds_src = Dataset.create(
        10, (dense_spec("v"),), 0, 10, data={"v": np.arange(10.0)}
    )
    ds_dst = Dataset.create(10, (dense_spec("v"),), 0, 10)
    payloads = ds_src.extract(2, 7, ["v"])
    ds_dst.insert(2, 7, payloads, ["v"])
    np.testing.assert_array_equal(ds_dst.stores["v"].data[2:7], np.arange(2.0, 7.0))


def test_make_store_dispatch_and_validation():
    assert isinstance(make_store(FieldSpec("a", "dense"), 0, 5), DenseStore)
    assert isinstance(make_store(FieldSpec("a", "csr"), 0, 5), CsrStore)
    assert isinstance(
        make_store(FieldSpec("a", "virtual", bytes_per_row=1), 0, 5), VirtualStore
    )
    with pytest.raises(ValueError):
        FieldSpec("a", "bogus")
    with pytest.raises(ValueError):
        FieldSpec("a", "virtual", bytes_per_row=-1)
