"""Scheduling policies: registry, ordering keys, cost model, backfilling."""

import pytest

from repro.cluster import ETHERNET_10G
from repro.malleability import ReconfigConfig
from repro.rmsim import (
    EasyBackfillPolicy,
    FifoPolicy,
    JobSpec,
    MalleableAwarePolicy,
    POLICIES,
    PriorityPolicy,
    TraceScheduler,
    policy_by_name,
)
from repro.rmsim.policies import reconfiguration_cost
from repro.smpi import SpawnModel


# ---------------------------------------------------------------- registry
def test_registry_names_match_classes():
    assert POLICIES == {
        "fifo": FifoPolicy,
        "priority": PriorityPolicy,
        "easy": EasyBackfillPolicy,
        "malleable": MalleableAwarePolicy,
    }
    for name in POLICIES:
        assert policy_by_name(name).name == name


def test_unknown_policy_name():
    with pytest.raises(ValueError, match="unknown policy"):
        policy_by_name("lottery")


def test_policy_kwargs_forwarded():
    pol = policy_by_name("malleable", grow_payoff=9.0, backfill_window=4)
    assert pol.grow_payoff == 9.0
    assert pol.backfill_window == 4
    with pytest.raises(ValueError):
        policy_by_name("easy", backfill_window=-1)


# ------------------------------------------------------------ ordering keys
def test_priority_sort_key_orders_by_priority_then_arrival_then_name():
    pol = PriorityPolicy()
    hi = JobSpec("hi", 5.0, 10, 0.1, 1, 1, priority=2)
    lo_early = JobSpec("a", 1.0, 10, 0.1, 1, 1, priority=0)
    lo_late = JobSpec("b", 1.0, 10, 0.1, 1, 1, priority=0)
    ordered = sorted([lo_late, lo_early, hi], key=pol.sort_key)
    assert [s.name for s in ordered] == ["hi", "a", "b"]


def test_fifo_sort_key_is_arrival_order():
    pol = FifoPolicy()
    a = JobSpec("z", 1.0, 10, 0.1, 1, 1, priority=5)
    b = JobSpec("y", 2.0, 10, 0.1, 1, 1, priority=0)
    assert sorted([b, a], key=pol.sort_key) == [a, b]  # priority ignored


# --------------------------------------------------------------- cost model
def test_reconfiguration_cost_positive_and_cached():
    config = ReconfigConfig.parse("merge-p2p-s")
    spawn = SpawnModel(0.02, 0.002, 0.005)
    args = (100_000, 64.0, 8, 16, config, ETHERNET_10G, spawn, 16)
    reconfiguration_cost.cache_clear()
    cost = reconfiguration_cost(*args)
    assert cost > 0.0
    assert reconfiguration_cost(*args) == cost
    info = reconfiguration_cost.cache_info()
    assert info.hits == 1 and info.misses == 1
    # More data to move costs more.
    bigger = reconfiguration_cost(
        100_000, 640.0, 8, 16, config, ETHERNET_10G, spawn, 16
    )
    assert bigger > cost


# ------------------------------------------------------------- backfilling
def _sched(jobs, policy, total_slots=8):
    return TraceScheduler(total_slots, jobs, policy=policy)


def _blocked_head_workload():
    # wide holds 7 of 8 slots; big (8 procs) blocks the queue; tiny
    # (1 proc, short) fits the idle slot but only starts early if
    # backfilling works.
    return [
        JobSpec("wide", 0.0, iterations=100, work_per_iteration=1.0,
                min_procs=7, max_procs=7),
        JobSpec("big", 1.0, iterations=100, work_per_iteration=1.0,
                min_procs=8, max_procs=8),
        JobSpec("tiny", 2.0, iterations=3, work_per_iteration=0.1,
                min_procs=1, max_procs=1),
    ]


def test_easy_backfill_lets_small_job_jump_blocked_head():
    jobs = _blocked_head_workload()
    fifo = _sched(jobs, FifoPolicy()).run()
    assert fifo.records["tiny"].started_at >= fifo.records["big"].started_at

    easy = _sched(jobs, EasyBackfillPolicy()).run()
    assert easy.records["tiny"].started_at < easy.records["big"].started_at
    # Backfilling never delays the reserved head.
    assert easy.records["big"].started_at <= fifo.records["big"].started_at
    assert easy.records["tiny"].started_at == pytest.approx(2.0)


def test_backfill_never_delays_reservation_holder():
    # slow would finish *after* the head's reservation at any width: EASY
    # must refuse to backfill it even though slots are free right now.
    jobs = [
        JobSpec("wide", 0.0, iterations=20, work_per_iteration=1.0,
                min_procs=6, max_procs=6),
        JobSpec("head", 1.0, iterations=20, work_per_iteration=1.0,
                min_procs=8, max_procs=8),
        JobSpec("slow", 2.0, iterations=500, work_per_iteration=1.0,
                min_procs=2, max_procs=2),
    ]
    res = _sched(jobs, EasyBackfillPolicy()).run()
    assert res.records["slow"].started_at >= res.records["head"].started_at


def test_zero_backfill_window_degrades_to_fifo():
    jobs = _blocked_head_workload()
    fifo = _sched(jobs, FifoPolicy()).run()
    no_bf = _sched(jobs, EasyBackfillPolicy(backfill_window=0)).run()
    assert (
        no_bf.records["tiny"].started_at == fifo.records["tiny"].started_at
    )


# ------------------------------------------------------- priced malleability
def test_malleable_policy_grows_into_idle_slots():
    # blocker forces solo to start narrow (width 2); once blocker
    # finishes, the idle slots should be handed to solo (the predicted
    # time saved dwarfs the reconfiguration cost).
    jobs = [
        JobSpec("blocker", 0.0, iterations=10, work_per_iteration=0.6,
                min_procs=6, max_procs=6),
        JobSpec("solo", 0.1, iterations=2000, work_per_iteration=4.0,
                min_procs=2, max_procs=8, serial_fraction=0.02),
    ]
    res = _sched(jobs, MalleableAwarePolicy(min_dwell=0.0)).run()
    assert res.n_grows >= 1
    sizes = [p for _, p in res.records["solo"].size_history]
    assert max(sizes) > sizes[0]


def test_min_dwell_suppresses_immediate_resizes():
    jobs = [
        JobSpec("solo", 0.0, iterations=50, work_per_iteration=4.0,
                min_procs=2, max_procs=8, serial_fraction=0.02),
    ]
    # Dwell longer than the whole job: no resize can ever fire.
    res = _sched(jobs, MalleableAwarePolicy(min_dwell=1e9)).run()
    assert res.n_grows == 0 and res.n_shrinks == 0


def test_malleable_policy_shrinks_to_admit_waiting_head():
    # donor holds the whole machine; head needs 4 slots and runs long
    # enough to be worth the disruption.
    jobs = [
        JobSpec("donor", 0.0, iterations=3000, work_per_iteration=4.0,
                min_procs=2, max_procs=8, serial_fraction=0.02),
        JobSpec("head", 10.0, iterations=600, work_per_iteration=2.0,
                min_procs=4, max_procs=4),
    ]
    res = _sched(jobs, MalleableAwarePolicy(min_dwell=0.0)).run()
    assert res.n_shrinks >= 1
    assert res.records["head"].started_at is not None
    assert res.records["head"].finished_at is not None
