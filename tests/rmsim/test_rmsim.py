"""RMS simulation: slot pool, decision boards, scheduler end-to-end."""

import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.malleability import ReconfigConfig, RunStats
from repro.rmsim import (
    DecisionBoard,
    DynamicRMS,
    JobSpec,
    MalleableScheduler,
    SlotPool,
)
from repro.simulate import Simulator


# ---------------------------------------------------------------- slot pool
def test_pool_first_fit_and_release():
    pool = SlotPool(10)
    assert pool.allocate(4) == 0
    assert pool.allocate(3) == 4
    assert pool.free_slots == 3
    pool.release(0, 4)
    assert pool.allocate(2) == 0  # first fit reuses the hole
    assert pool.allocate(5) is None  # only 2 + 3 fragmented


def test_pool_merges_adjacent_frees():
    pool = SlotPool(10)
    a = pool.allocate(5)
    b = pool.allocate(5)
    pool.release(a, 5)
    pool.release(b, 5)
    assert pool.allocate(10) == 0


def test_pool_extension_room():
    pool = SlotPool(10)
    base = pool.allocate(4)     # [0,4)
    other = pool.allocate(2)    # [4,6)
    assert pool.extension_room(base, 4) == 0
    pool.release(other, 2)
    assert pool.extension_room(base, 4) == 6
    pool.claim_extension(base, 4, 3)
    assert pool.free_slots == 3
    with pytest.raises(ValueError):
        pool.claim_extension(base, 7, 99)


def test_pool_double_free_detected():
    pool = SlotPool(10)
    base = pool.allocate(4)
    pool.release(base, 4)
    with pytest.raises(ValueError):
        pool.release(base, 4)


def test_pool_validation():
    with pytest.raises(ValueError):
        SlotPool(0)
    pool = SlotPool(4)
    with pytest.raises(ValueError):
        pool.allocate(0)


# -------------------------------------------------------------------- board
def test_board_posts_beyond_latest_checkpoint():
    stats = RunStats()
    stats.latest_checked_iteration = 7
    board = DecisionBoard(stats)
    req = board.post(4)
    assert req.at_iteration == 7 + DecisionBoard.SAFETY_MARGIN
    assert board.pending


def test_board_refuses_overlapping_decisions():
    stats = RunStats()
    stats.latest_checked_iteration = 3
    board = DecisionBoard(stats)
    assert board.post(4) is not None
    assert board.post(2) is None  # first one still in flight


def test_dynamic_rms_views_share_board_with_private_cursors():
    stats = RunStats()
    stats.latest_checked_iteration = 0
    board = DecisionBoard(stats)
    board.post(4)
    rms_a = DynamicRMS(board)
    rms_b = DynamicRMS(board)
    assert rms_a.check(1) is None
    got_a = rms_a.check(2)
    got_b = rms_b.check(5)
    assert got_a is got_b  # same decision object, both ranks fire
    assert rms_a.check(6) is None  # consumed


def test_dynamic_rms_child_factory_skips_consumed():
    stats = RunStats()
    stats.latest_checked_iteration = 0
    board = DecisionBoard(stats)
    board.post(4)
    parent = DynamicRMS(board)
    child = parent.child_factory(consumed=1)()
    assert child.check(100) is None  # decision 0 already consumed upstream


# ---------------------------------------------------------------- scheduler
def small_workload(malleable):
    return [
        JobSpec("a", 0.0, iterations=40, work_per_iteration=0.3,
                min_procs=4, max_procs=8 if malleable else 4),
        JobSpec("b", 0.1, iterations=30, work_per_iteration=0.2,
                min_procs=2, max_procs=6 if malleable else 2),
        JobSpec("c", 0.4, iterations=20, work_per_iteration=0.15,
                min_procs=4, max_procs=4),
    ]


def run_schedule(jobs, enable=True):
    sim = Simulator()
    machine = Machine(sim, 4, 2, ETHERNET_10G)
    sched = MalleableScheduler(machine, jobs, enable_malleability=enable)
    return sched.run()


def test_all_jobs_finish_rigid():
    res = run_schedule(small_workload(False), enable=False)
    assert all(r.finished_at is not None for r in res.records.values())
    assert res.makespan > 0
    assert 0 < res.utilization <= 1


def test_all_jobs_finish_malleable():
    res = run_schedule(small_workload(True), enable=True)
    assert all(r.finished_at is not None for r in res.records.values())
    # At least one job actually resized.
    assert any(len(r.size_history) > 1 for r in res.records.values())


def test_malleability_improves_the_schedule():
    rigid = run_schedule(small_workload(False), enable=False)
    melt = run_schedule(small_workload(True), enable=True)
    assert melt.makespan <= rigid.makespan * 1.02
    assert melt.utilization >= rigid.utilization * 0.95


def test_malleable_job_shrinks_when_queue_fills():
    res = run_schedule(small_workload(True), enable=True)
    a = res.records["a"]
    sizes = [p for _, p in a.size_history]
    assert sizes[0] == 8          # started wide on the empty machine
    assert min(sizes) <= 4        # shrank when others arrived


def test_unique_job_names_required():
    jobs = [
        JobSpec("x", 0.0, 10, 0.1, 1, 1),
        JobSpec("x", 1.0, 10, 0.1, 1, 1),
    ]
    sim = Simulator()
    machine = Machine(sim, 2, 2, ETHERNET_10G)
    with pytest.raises(ValueError):
        MalleableScheduler(machine, jobs)


def test_jobspec_validation():
    with pytest.raises(ValueError):
        JobSpec("bad", -1.0, 10, 0.1, 1, 2)
    with pytest.raises(ValueError):
        JobSpec("bad", 0.0, 10, 0.1, 3, 2)
    with pytest.raises(ValueError):
        JobSpec("bad", 0.0, 0, 0.1, 1, 2)
    with pytest.raises(ValueError):
        JobSpec("bad", 0.0, 10, 0.0, 1, 2)
    assert not JobSpec("r", 0.0, 10, 0.1, 2, 2).malleable
    assert JobSpec("m", 0.0, 10, 0.1, 2, 4).malleable
