"""Regression tests for the scheduler bugfix sweep.

* ``ScheduleResult`` statistics on empty / partially-completed workloads
  (historically a ``ZeroDivisionError`` on empty, and a ``RuntimeError``
  as soon as one record never finished).
* Duplicate-arrival determinism: ``MalleableScheduler`` enforces the
  ``(arrival_time, name)`` total order, so submission order of
  same-instant jobs cannot change the schedule.
"""

from repro.cluster import ETHERNET_10G, Machine
from repro.rmsim import (
    JobRecord,
    JobSpec,
    MalleableScheduler,
    ScheduleResult,
    arrival_order,
)
from repro.simulate import Simulator


# ---------------------------------------------------------- ScheduleResult
def test_empty_workload_statistics_are_zero():
    res = ScheduleResult(records={}, makespan=0.0, utilization=0.0)
    assert res.n_completed == 0
    assert res.completed == []
    assert res.mean_waiting_time == 0.0
    assert res.mean_turnaround == 0.0


def test_means_skip_unfinished_records():
    done = JobSpec("done", 0.0, 10, 0.1, 1, 1)
    stuck = JobSpec("stuck", 0.0, 10, 0.1, 1, 1)
    records = {
        "done": JobRecord(spec=done, started_at=2.0, finished_at=12.0),
        "stuck": JobRecord(spec=stuck),  # never started
    }
    res = ScheduleResult(records=records, makespan=12.0, utilization=0.5)
    assert res.n_completed == 1
    assert [r.spec.name for r in res.completed] == ["done"]
    assert res.mean_waiting_time == 2.0
    assert res.mean_turnaround == 12.0


def test_nothing_completed_yields_zero_not_error():
    spec = JobSpec("q", 0.0, 10, 0.1, 1, 1)
    res = ScheduleResult(
        records={"q": JobRecord(spec=spec)}, makespan=0.0, utilization=0.0
    )
    assert res.n_completed == 0
    assert res.mean_waiting_time == 0.0
    assert res.mean_turnaround == 0.0


# ----------------------------------------------- duplicate-arrival ordering
def _same_instant_jobs():
    # Three jobs arriving at the same instant; only capacity for one at a
    # time, so admission order decides the whole schedule.
    return [
        JobSpec(name, 1.0, iterations=10, work_per_iteration=0.2,
                min_procs=4, max_procs=4)
        for name in ("zeta", "alpha", "mid")
    ]


def _run(jobs):
    sim = Simulator()
    machine = Machine(sim, 2, 2, ETHERNET_10G)  # 4 slots total
    return MalleableScheduler(machine, jobs, enable_malleability=False).run()


def test_arrival_order_key():
    a = JobSpec("a", 5.0, 10, 0.1, 1, 1)
    b = JobSpec("b", 5.0, 10, 0.1, 1, 1)
    assert arrival_order(a) == (5.0, "a")
    assert sorted([b, a], key=arrival_order) == [a, b]


def test_duplicate_arrivals_scheduled_in_name_order():
    res = _run(_same_instant_jobs())
    starts = sorted(
        (r.started_at, r.spec.name) for r in res.records.values()
    )
    assert [name for _, name in starts] == ["alpha", "mid", "zeta"]


def test_submission_order_of_tied_arrivals_is_irrelevant():
    jobs = _same_instant_jobs()
    baseline = _run(jobs)
    for rotation in range(1, len(jobs)):
        shuffled = jobs[rotation:] + jobs[:rotation]
        res = _run(shuffled)
        assert res.makespan == baseline.makespan
        for name, rec in baseline.records.items():
            other = res.records[name]
            assert other.started_at == rec.started_at
            assert other.finished_at == rec.finished_at
