"""SlotPool edge cases pinned by the bugfix sweep.

The release path historically mutated the free list before validating,
so a *detected* double free still corrupted the pool.  These tests pin
the validate-first contract plus the scattered-allocation paths the
trace scheduler leans on.
"""

import pytest

from repro.rmsim import SlotPool


# ------------------------------------------------- validate-before-mutate
def test_pool_usable_after_rejected_release():
    pool = SlotPool(10)
    base = pool.allocate(4)
    pool.release(base, 4)
    with pytest.raises(ValueError):
        pool.release(base, 4)  # double free detected...
    # ...and the pool is NOT corrupted: the full machine still allocates.
    assert pool.free_slots == 10
    assert pool.allocate(10) == 0
    pool.release(0, 10)
    assert pool.free_slots == 10


def test_partial_overlap_release_rejected_without_damage():
    pool = SlotPool(10)
    assert pool.allocate(4) == 0  # busy: [0,4), free: [4,10)
    with pytest.raises(ValueError):
        pool.release(2, 4)  # [2,6) overlaps the free range [4,10)
    assert pool.free_slots == 6
    pool.release(0, 4)  # the legitimate release still works
    assert pool.allocate(10) == 0


def test_release_out_of_range_rejected():
    pool = SlotPool(8)
    pool.allocate(8)
    with pytest.raises(ValueError):
        pool.release(6, 4)  # [6,10) exceeds the pool
    with pytest.raises(ValueError):
        pool.release(-1, 2)
    pool.release(0, 8)
    assert pool.free_slots == 8


# ------------------------------------------------------ scattered paths
def test_allocate_scattered_spans_three_fragments():
    pool = SlotPool(12)
    a = pool.allocate(2)   # [0,2)
    b = pool.allocate(2)   # [2,4)
    c = pool.allocate(2)   # [4,6)
    d = pool.allocate(2)   # [6,8)
    e = pool.allocate(2)   # [8,10)
    pool.release(b, 2)
    pool.release(d, 2)
    # free fragments: [2,4), [6,8), [10,12) — a 6-slot ask spans all three.
    got = pool.allocate_scattered(6)
    assert got == [2, 3, 6, 7, 10, 11]
    assert pool.free_slots == 0
    assert pool.allocate_scattered(1) is None
    pool.release_slots(got)
    for base in (a, c, e):
        pool.release(base, 2)
    assert pool.allocate(12) == 0


def test_release_slots_duplicate_ids_raise_not_merge():
    pool = SlotPool(8)
    slots = pool.allocate_scattered(4)
    with pytest.raises(ValueError, match="duplicate slot id"):
        pool.release_slots(slots + [slots[0]])
    # Nothing was freed by the rejected call.
    assert pool.free_slots == 4
    pool.release_slots(slots)
    assert pool.free_slots == 8


def test_release_slots_atomic_when_later_run_double_frees():
    pool = SlotPool(10)
    held = pool.allocate(4)          # [0,4)
    free_already = [8, 9]            # tail of the pool is still free
    with pytest.raises(ValueError):
        pool.release_slots([0, 1, 2, 3] + free_already)
    # The earlier run [0,4) must NOT have been freed by the failed call.
    assert pool.free_slots == 6
    pool.release(held, 4)
    assert pool.allocate(10) == 0


# ------------------------------------------------------- extension at end
def test_extension_room_at_pool_end():
    pool = SlotPool(8)
    base = pool.allocate(6)  # [0,6), free tail [6,8)
    assert pool.extension_room(base, 6) == 2
    pool.claim_extension(base, 6, 2)
    assert pool.free_slots == 0
    # The block now ends exactly at the pool boundary: no room, and a
    # claim past the end is rejected.
    assert pool.extension_room(base, 8) == 0
    with pytest.raises(ValueError):
        pool.claim_extension(base, 8, 1)
    pool.release(base, 8)
    assert pool.free_slots == 8


# ------------------------------------------------------------ conservation
def test_alloc_free_round_trip_conserves_slots():
    pool = SlotPool(64)
    live: list[tuple[str, object]] = []
    # A deterministic interleaving of every alloc/free flavour.
    live.append(("block", (pool.allocate(10), 10)))
    base, k = live[0][1]
    pool.claim_extension(base, k, 3)  # free tail starts right after it
    live[0] = ("block", (base, k + 3))
    live.append(("scatter", pool.allocate_scattered(7)))
    live.append(("block", (pool.allocate(5), 5)))
    live.append(("scatter", pool.allocate_scattered(11)))
    held = sum(
        (len(v) if kind == "scatter" else v[1]) for kind, v in live
    )
    assert pool.free_slots == 64 - held
    for kind, v in live:
        if kind == "scatter":
            pool.release_slots(v)
        else:
            pool.release(v[0], v[1])
    assert pool.free_slots == 64
    assert pool.allocate(64) == 0
