"""TraceScheduler end-to-end: completion, determinism, accounting, CLI."""

import json

import pytest

from repro.analysis import schedule_summary, summary_json
from repro.harness.cli import main as cli_main
from repro.obs import MetricsRegistry
from repro.rmsim import (
    JobSpec,
    TraceConfig,
    TraceScheduler,
    generate_trace,
    policy_by_name,
)

SLOTS = 128  # 8 nodes x 16 cores


def small_trace(seed=5, n_jobs=60):
    cfg = TraceConfig.sized(SLOTS, n_jobs, seed=seed, max_procs=32)
    return generate_trace(cfg)


def run_policy(trace, policy_name, registry=None):
    sched = TraceScheduler(
        SLOTS,
        trace.jobs,
        policy=policy_by_name(policy_name),
        registry=registry,
    )
    return sched.run()


# -------------------------------------------------------------- completion
@pytest.mark.parametrize("policy", ["fifo", "priority", "easy", "malleable"])
def test_every_policy_completes_the_trace(policy):
    trace = small_trace()
    res = run_policy(trace, policy)
    assert res.n_completed == len(trace)
    assert res.policy == policy
    assert res.total_slots == SLOTS
    assert res.makespan > 0
    assert 0.0 < res.utilization <= 1.0
    assert res.n_events > len(trace)  # at least arrival+finish per job


def test_malleable_run_actually_resizes():
    res = run_policy(small_trace(), "malleable")
    assert res.n_grows + res.n_shrinks > 0


# ------------------------------------------------------------- determinism
def _fingerprint(res):
    return [
        (
            name,
            res.records[name].started_at,
            res.records[name].finished_at,
            tuple(res.records[name].size_history),
        )
        for name in sorted(res.records)
    ]


def test_repeat_runs_are_identical():
    trace = small_trace()
    a = run_policy(trace, "malleable")
    b = run_policy(trace, "malleable")
    assert _fingerprint(a) == _fingerprint(b)
    assert summary_json(schedule_summary(a)) == summary_json(
        schedule_summary(b)
    )


def test_trace_file_replay_matches_generated_run(tmp_path):
    trace = small_trace()
    path = trace.save(tmp_path / "t.json")
    from repro.rmsim import WorkloadTrace

    replay = WorkloadTrace.load(path)
    assert _fingerprint(run_policy(trace, "easy")) == _fingerprint(
        run_policy(replay, "easy")
    )


# --------------------------------------------------------------- accounting
def test_slots_conserved_after_run():
    sched = TraceScheduler(
        SLOTS, small_trace().jobs, policy=policy_by_name("malleable")
    )
    sched.run()
    assert sched.pool.free_slots == SLOTS


def test_utilization_matches_busy_coreseconds():
    res = run_policy(small_trace(), "fifo")
    assert res.utilization == pytest.approx(
        res.busy_coreseconds / (res.makespan * res.total_slots)
    )
    assert res.busy_coreseconds > 0


def test_validation_rejects_bad_workloads():
    dup = [
        JobSpec("x", 0.0, 10, 0.1, 1, 1),
        JobSpec("x", 1.0, 10, 0.1, 1, 1),
    ]
    with pytest.raises(ValueError):
        TraceScheduler(8, dup)
    too_wide = [JobSpec("w", 0.0, 10, 0.1, 16, 16)]
    with pytest.raises(ValueError):
        TraceScheduler(8, too_wide)


# ------------------------------------------------------------------ metrics
def test_metrics_registry_sees_rmsim_family():
    registry = MetricsRegistry()
    trace = small_trace(n_jobs=40)
    res = run_policy(trace, "malleable", registry=registry)
    doc = registry.to_dict()
    assert doc["counters"]["rmsim.jobs.arrived"] == len(trace)
    assert doc["counters"]["rmsim.jobs.completed"] == res.n_completed
    assert "rmsim.queue.depth" in doc["gauges"]
    assert "rmsim.slots.free" in doc["gauges"]
    assert "rmsim.job.wait_s" in doc["histograms"]
    assert "rmsim.job.turnaround_s" in doc["histograms"]
    if res.n_grows:
        assert doc["counters"]["rmsim.resizes{direction=grow}"] == res.n_grows


# ------------------------------------------------------------------ summary
def test_schedule_summary_shape_and_canonical_json():
    res = run_policy(small_trace(n_jobs=30), "easy")
    summary = schedule_summary(res)
    for key in (
        "policy", "total_slots", "n_jobs", "n_completed", "makespan_s",
        "utilization", "busy_coreseconds", "energy_j",
        "throughput_jobs_per_hour", "n_events", "n_grows", "n_shrinks",
        "waiting_s", "turnaround_s", "bounded_slowdown",
    ):
        assert key in summary, key
    assert summary["n_completed"] == 30
    assert summary["energy_j"] > 0
    for dist in ("waiting_s", "turnaround_s", "bounded_slowdown"):
        d = summary[dist]
        assert d["p50"] <= d["p95"] <= d["max"]
    text = summary_json(summary)
    assert text.endswith("\n")
    assert json.loads(text) == summary
    assert summary_json(schedule_summary(res)) == text


# ---------------------------------------------------------------------- CLI
def test_cli_rmsim_end_to_end(tmp_path, capsys):
    out1 = tmp_path / "s1.json"
    out2 = tmp_path / "s2.json"
    metrics = tmp_path / "m.json"
    trace_path = tmp_path / "t.json"
    argv = [
        "rmsim", "--nodes", "4", "--cores-per-node", "8", "--jobs", "40",
        "--seed", "3", "--policy", "malleable",
    ]
    assert cli_main(argv + [
        "--out", str(out1), "--metrics-out", str(metrics),
        "--save-trace", str(trace_path),
    ]) == 0
    assert cli_main(argv + ["--out", str(out2)]) == 0
    # Byte-identical repeat — the rmsim-smoke CI contract.
    assert out1.read_bytes() == out2.read_bytes()
    summary = json.loads(out1.read_text())
    assert summary["n_completed"] == 40
    assert summary["trace"]["seed"] == 3
    doc = json.loads(metrics.read_text())
    assert doc["meta"]["tool"] == "repro-harness rmsim"
    assert any(name.startswith("rmsim.") for name in doc["counters"])
    # Replaying the saved trace reproduces the same schedule.
    out3 = tmp_path / "s3.json"
    assert cli_main([
        "rmsim", "--trace", str(trace_path), "--nodes", "4",
        "--cores-per-node", "8", "--policy", "malleable",
        "--out", str(out3),
    ]) == 0
    a = json.loads(out1.read_text())
    b = json.loads(out3.read_text())
    a.pop("trace")
    b.pop("trace")  # provenance differs by design
    assert a == b
    capsys.readouterr()  # swallow the human-readable report
