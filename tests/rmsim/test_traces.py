"""Workload-trace generator: determinism, JSON round-trip, distributions."""

import dataclasses
import json

import pytest

from repro.rmsim import TraceConfig, WorkloadTrace, generate_trace
from repro.rmsim.traces import TRACE_VERSION


def small_cfg(**overrides):
    base = dict(seed=11, n_jobs=120, max_procs=64)
    base.update(overrides)
    return TraceConfig(**base)


# ------------------------------------------------------------- determinism
def test_same_seed_same_trace():
    a = generate_trace(small_cfg())
    b = generate_trace(small_cfg())
    assert a.to_json() == b.to_json()


def test_different_seed_different_trace():
    a = generate_trace(small_cfg())
    b = generate_trace(dataclasses.replace(small_cfg(), seed=12))
    assert a.to_json() != b.to_json()


def test_jobs_sorted_by_arrival_then_name():
    trace = generate_trace(small_cfg(burst_prob=0.2))
    keys = [(j.arrival_time, j.name) for j in trace.jobs]
    assert keys == sorted(keys)


# -------------------------------------------------------------- round-trip
def test_json_round_trip_is_byte_identical():
    trace = generate_trace(small_cfg())
    text = trace.to_json()
    again = WorkloadTrace.from_json(text)
    assert again.to_json() == text
    assert len(again) == len(trace)


def test_save_load_round_trip(tmp_path):
    trace = generate_trace(small_cfg())
    path = trace.save(tmp_path / "trace.json")
    loaded = WorkloadTrace.load(path)
    assert loaded.to_json() == trace.to_json()


def test_unknown_job_field_rejected():
    trace = generate_trace(small_cfg(n_jobs=3))
    doc = json.loads(trace.to_json())
    doc["jobs"][0]["surprise"] = 1
    with pytest.raises(ValueError, match="unknown job fields"):
        WorkloadTrace.from_json(json.dumps(doc))


def test_wrong_version_rejected():
    trace = generate_trace(small_cfg(n_jobs=3))
    doc = json.loads(trace.to_json())
    doc["version"] = TRACE_VERSION + 1
    with pytest.raises(ValueError, match="unsupported trace version"):
        WorkloadTrace.from_json(json.dumps(doc))


# ------------------------------------------------------------ distributions
def test_widths_respect_bounds_and_malleable_split():
    cfg = small_cfg(n_jobs=400, malleable_fraction=0.5)
    trace = generate_trace(cfg)
    malleable = 0
    for j in trace.jobs:
        assert cfg.min_procs <= j.min_procs <= j.max_procs <= cfg.max_procs
        malleable += j.min_procs < j.max_procs
    # Weighted draw: roughly half, with generous slack for a 400-sample run.
    assert 0.3 * len(trace) < malleable < 0.7 * len(trace)


def test_priorities_drawn_from_catalog():
    cfg = small_cfg(priorities=(0, 5), priority_weights=(0.5, 0.5))
    trace = generate_trace(cfg)
    seen = {j.priority for j in trace.jobs}
    assert seen <= {0, 5}
    assert len(seen) == 2  # both levels appear in 120 draws


def test_data_bytes_stay_on_discrete_choices():
    cfg = small_cfg()
    trace = generate_trace(cfg)
    allowed = set(cfg.data_bytes_choices)
    assert all(j.data_bytes in allowed for j in trace.jobs)


def test_diurnal_rate_modulation():
    cfg = small_cfg(diurnal_amplitude=0.5)
    quarter = cfg.diurnal_period / 4.0
    assert cfg.rate_at(quarter) == pytest.approx(cfg.arrival_rate * 1.5)
    assert cfg.rate_at(3 * quarter) == pytest.approx(cfg.arrival_rate * 0.5)
    assert cfg.rate_at(0.0) == pytest.approx(cfg.arrival_rate)


def test_burst_jobs_land_inside_spread_window():
    cfg = small_cfg(burst_prob=0.3, burst_spread=5.0, n_jobs=300)
    trace = generate_trace(cfg)
    # With heavy bursting, consecutive arrivals frequently land within
    # one spread window — the trace visibly clusters.
    gaps = [
        b.arrival_time - a.arrival_time
        for a, b in zip(trace.jobs, trace.jobs[1:])
    ]
    assert sum(1 for g in gaps if g < cfg.burst_spread) > len(gaps) // 2


# ---------------------------------------------------------------- validation
def test_config_validation():
    with pytest.raises(ValueError):
        TraceConfig(arrival_rate=0.0)
    with pytest.raises(ValueError):
        TraceConfig(diurnal_amplitude=1.0)
    with pytest.raises(ValueError):
        TraceConfig(min_procs=8, max_procs=4)
    with pytest.raises(ValueError):
        TraceConfig(priorities=(0, 1), priority_weights=(1.0,))
    with pytest.raises(ValueError):
        TraceConfig(config_key="not-a-config")


def test_sized_targets_offered_load():
    cfg = TraceConfig.sized(4096, 2000, seed=3, load=0.8)
    trace = generate_trace(cfg)
    horizon = trace.jobs[-1].arrival_time
    core_s = sum(j.runtime(j.max_procs) * j.max_procs for j in trace.jobs)
    offered = core_s / (horizon * 4096)
    # The fixed-point pilot lands near the target for datacenter-scale N.
    assert 0.5 * 0.8 < offered < 1.6 * 0.8


def test_sized_is_deterministic():
    a = TraceConfig.sized(1024, 500, seed=9)
    b = TraceConfig.sized(1024, 500, seed=9)
    assert a == b
