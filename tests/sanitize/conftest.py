"""Shared fixture: run an SPMD program under an attached sanitizer."""

from __future__ import annotations

import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.simulate import Simulator
from repro.smpi import MpiWorld
from repro.sanitize import Sanitizer


def run_sanitized(func, n, *, n_nodes=2, cores_per_node=1, seed=0):
    """Run ``func`` as an ``n``-rank job with a sanitizer attached.

    One core per node by default so a 2-rank job spans two nodes: the
    intra-node fabric is always-eager (threshold 1 << 30), which would
    hide every rendezvous-window race the fixtures seed.

    Returns ``(sanitizer, error)`` where ``error`` is whatever exception the
    simulation raised (deliberately-buggy fixtures often also trip the hard
    runtime checks) or ``None`` for a clean completion.  The sanitizer is
    detached either way, so its end-of-run passes always run.
    """
    sim = Simulator()
    machine = Machine(sim, n_nodes, cores_per_node, ETHERNET_10G, seed=seed)
    world = MpiWorld(machine)
    san = Sanitizer().attach(world)
    world.launch(func, slots=range(n))
    error = None
    try:
        sim.run()
    except Exception as exc:  # deliberate-bug fixtures raise by design
        error = exc
    finally:
        san.detach()
    return san, error


@pytest.fixture
def sanitized_run():
    return run_sanitized
