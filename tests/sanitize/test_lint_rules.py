"""One buggy + one clean snippet per REP lint rule, plus driver/CLI tests.

Mirrors test_runtime_rules.py: every positive snippet asserts exactly its
rule fires and every clean twin asserts zero findings.  The last test is
the self-gate: the lint must be clean over the repo's own ``src/`` tree.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.sanitize import REP_RULES
from repro.sanitize.lint import lint_paths, lint_source, main

SRC = Path(__file__).resolve().parents[2] / "src"
#: any path ending in a hot-path suffix triggers the REP005 scope.
HOT = "src/repro/smpi/requests.py"


def lint(snippet: str, path: str = "pkg/mod.py", **kw):
    return lint_source(textwrap.dedent(snippet), path, **kw)


def rules_of(findings) -> list[str]:
    return sorted({f.rule for f in findings})


# ------------------------------------------------------------------ REP001
@pytest.mark.parametrize("snippet", [
    "import time\n\ndef f():\n    return time.time()\n",
    "import time\n\ndef f():\n    return time.perf_counter_ns()\n",
    "from time import monotonic\n\ndef f():\n    return monotonic()\n",
    "import datetime\n\ndef f():\n    return datetime.datetime.now()\n",
    "from datetime import datetime\n\ndef f():\n    return datetime.utcnow()\n",
    "from datetime import date\n\ndef f():\n    return date.today()\n",
])
def test_rep001_wall_clock_detected(snippet):
    assert rules_of(lint(snippet)) == ["REP001"]


def test_rep001_clean_for_simulated_time_and_sleep():
    clean = """
    import time

    def f(sim):
        time.sleep(0.0)      # suspends the host thread, reads no clock
        return sim.now       # the simulated clock is the contract
    """
    assert lint(clean) == []


# ------------------------------------------------------------------ REP002
@pytest.mark.parametrize("snippet", [
    "import random\n\ndef f():\n    return random.random()\n",
    "import random\n\ndef f(xs):\n    random.shuffle(xs)\n",
    "from random import randint\n\ndef f():\n    return randint(0, 3)\n",
    "import numpy as np\n\ndef f():\n    return np.random.rand(4)\n",
    "from numpy import random\n\ndef f():\n    return random.permutation(3)\n",
])
def test_rep002_unseeded_randomness_detected(snippet):
    assert rules_of(lint(snippet)) == ["REP002"]


def test_rep002_clean_for_seeded_generators():
    clean = """
    import numpy as np

    def f(seed):
        rng = np.random.default_rng(seed)
        ss = np.random.SeedSequence(seed)
        return rng.random(4), ss
    """
    assert lint(clean) == []


# ------------------------------------------------------------------ REP003
@pytest.mark.parametrize("snippet", [
    "def f(xs):\n    for x in set(xs):\n        print(x)\n",
    "def f():\n    for x in {1, 2, 3}:\n        print(x)\n",
    "def f(xs):\n    return [x for x in {c for c in xs}]\n",
    "def f(a, xs):\n    for x in a | set(xs):\n        print(x)\n",
])
def test_rep003_bare_set_iteration_detected(snippet):
    assert rules_of(lint(snippet)) == ["REP003"]


def test_rep003_clean_for_sorted_and_fromkeys():
    clean = """
    def f(xs):
        for x in sorted(set(xs)):
            print(x)
        for x in dict.fromkeys(xs):
            print(x)
        if 3 in {1, 2, 3}:      # membership, not iteration
            return set(xs)      # building a set is fine
    """
    assert lint(clean) == []


# ------------------------------------------------------------------ REP004
def test_rep004_bare_except_detected():
    snippet = """
    def f():
        try:
            return 1
        except:
            return 2
    """
    assert rules_of(lint(snippet)) == ["REP004"]


def test_rep004_clean_for_named_exceptions():
    clean = """
    def f():
        try:
            return 1
        except (ValueError, KeyError):
            return 2
        except Exception:
            return 3
    """
    assert lint(clean) == []


# ------------------------------------------------------------------ REP005
def test_rep005_hot_path_class_without_slots_detected():
    snippet = "class Msg:\n    def __init__(self):\n        self.x = 1\n"
    assert rules_of(lint(snippet, path=HOT)) == ["REP005"]
    # The same class outside the hot-path module set is fine.
    assert lint(snippet, path="src/repro/harness/cli.py") == []


def test_rep005_clean_for_slotted_and_exempt_classes():
    clean = """
    from dataclasses import dataclass
    from enum import Enum

    class Msg:
        __slots__ = ("x",)

    class Kind(Enum):
        A = 1

    class TransportError(RuntimeError):
        pass

    @dataclass(frozen=True, slots=True)
    class Point:
        x: int
    """
    assert lint(clean, path=HOT) == []


# ------------------------------------------------------------------ REP006
@pytest.mark.parametrize("snippet", [
    "def f(mpi):\n    yield from mpi.isend(1.0, dest=1)\n",
    "def f(mpi):\n    yield from mpi.irecv(source=0)\n",
    "async def f(mpi):\n    await mpi.isend(1.0, dest=1)\n",
    "def f(mpi):\n    _ = yield from mpi.irecv(source=0)\n",
])
def test_rep006_discarded_request_detected(snippet):
    assert rules_of(lint(snippet)) == ["REP006"]


def test_rep006_clean_when_request_kept():
    clean = """
    def f(mpi):
        req = yield from mpi.isend(1.0, dest=1)
        yield from mpi.wait(req)
        yield from mpi.send(2.0, dest=1)   # blocking send returns no request
    """
    assert lint(clean) == []


# ------------------------------------------------------------- suppressions
def test_noqa_suppresses_named_rule_only():
    hit = "import time\n\ndef f():\n    return time.time()\n"
    ok = ("import time\n\ndef f():\n"
          "    return time.time()  # repro: noqa[REP001] - heartbeat\n")
    wrong = ("import time\n\ndef f():\n"
             "    return time.time()  # repro: noqa[REP002]\n")
    bare = ("import time\n\ndef f():\n"
            "    return time.time()  # repro: noqa\n")
    assert rules_of(lint(hit)) == ["REP001"]
    assert lint(ok) == []
    assert rules_of(lint(wrong)) == ["REP001"]  # wrong code: still fires
    assert lint(bare) == []  # bare form suppresses every rule on the line


def test_noqa_multiple_rules_one_line():
    src = ("import time, random\n\ndef f():\n"
           "    return time.time() + random.random()"
           "  # repro: noqa[REP001, REP002]\n")
    assert lint(src) == []


# ------------------------------------------------------------------ drivers
def test_select_filters_and_rejects_unknown():
    src = ("import time\n\ndef f(xs):\n"
           "    for x in set(xs):\n        print(time.time())\n")
    assert rules_of(lint(src)) == ["REP001", "REP003"]
    assert rules_of(lint(src, select=["REP003"])) == ["REP003"]
    with pytest.raises(ValueError, match="REP999"):
        lint(src, select=["REP999"])


def test_findings_carry_sorted_provenance():
    src = ("import time\n\ndef f(xs):\n"
           "    for x in set(xs):\n        print(time.time())\n")
    findings = lint(src, path="a/b.py")
    assert [f.rule for f in findings] == ["REP001", "REP003"]
    f = findings[0]
    assert f.path == "a/b.py" and f.line == 5
    assert f.format().startswith("a/b.py:5:")
    assert f.to_dict()["rule"] == "REP001"


def test_main_text_json_and_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    good = tmp_path / "good.py"
    good.write_text("def f(sim):\n    return sim.now\n")

    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "REP001" in out and "1 finding(s)" in out

    assert main([str(good)]) == 0
    assert "clean: no findings" in capsys.readouterr().out

    assert main(["--format", "json", str(tmp_path)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert [d["rule"] for d in doc] == ["REP001"]
    assert doc[0]["path"] == str(bad)

    assert main(["--select", "REP004", str(bad)]) == 0
    assert main(["--list-rules", str(bad)]) == 0
    listed = capsys.readouterr().out
    assert all(code in listed for code in REP_RULES)


# ---------------------------------------------------------------- self-gate
def test_repo_source_tree_is_lint_clean():
    """The gate CI enforces: the repo's own src/ carries zero findings."""
    findings = lint_paths([SRC])
    assert findings == [], "\n".join(f.format() for f in findings)
