"""One buggy + one clean snippet per REP lint rule, plus driver/CLI tests.

Mirrors test_runtime_rules.py: every positive snippet asserts exactly its
rule fires and every clean twin asserts zero findings.  The last test is
the self-gate: the lint must be clean over the repo's own ``src/`` tree.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.sanitize import REP_RULES
from repro.sanitize.lint import lint_paths, lint_source, main

SRC = Path(__file__).resolve().parents[2] / "src"
#: any path ending in a hot-path suffix triggers the REP005 scope.
HOT = "src/repro/smpi/requests.py"


def lint(snippet: str, path: str = "pkg/mod.py", **kw):
    return lint_source(textwrap.dedent(snippet), path, **kw)


def rules_of(findings) -> list[str]:
    return sorted({f.rule for f in findings})


# ------------------------------------------------------------------ REP001
@pytest.mark.parametrize("snippet", [
    "import time\n\ndef f():\n    return time.time()\n",
    "import time\n\ndef f():\n    return time.perf_counter_ns()\n",
    "from time import monotonic\n\ndef f():\n    return monotonic()\n",
    "import datetime\n\ndef f():\n    return datetime.datetime.now()\n",
    "from datetime import datetime\n\ndef f():\n    return datetime.utcnow()\n",
    "from datetime import date\n\ndef f():\n    return date.today()\n",
])
def test_rep001_wall_clock_detected(snippet):
    assert rules_of(lint(snippet)) == ["REP001"]


def test_rep001_clean_for_simulated_time_and_sleep():
    clean = """
    import time

    def f(sim):
        time.sleep(0.0)      # suspends the host thread, reads no clock
        return sim.now       # the simulated clock is the contract
    """
    assert lint(clean) == []


# ------------------------------------------------------------------ REP002
@pytest.mark.parametrize("snippet", [
    "import random\n\ndef f():\n    return random.random()\n",
    "import random\n\ndef f(xs):\n    random.shuffle(xs)\n",
    "from random import randint\n\ndef f():\n    return randint(0, 3)\n",
    "import numpy as np\n\ndef f():\n    return np.random.rand(4)\n",
    "from numpy import random\n\ndef f():\n    return random.permutation(3)\n",
])
def test_rep002_unseeded_randomness_detected(snippet):
    assert rules_of(lint(snippet)) == ["REP002"]


def test_rep002_clean_for_seeded_generators():
    clean = """
    import numpy as np

    def f(seed):
        rng = np.random.default_rng(seed)
        ss = np.random.SeedSequence(seed)
        return rng.random(4), ss
    """
    assert lint(clean) == []


# ------------------------------------------------------------------ REP003
@pytest.mark.parametrize("snippet", [
    "def f(xs):\n    for x in set(xs):\n        print(x)\n",
    "def f():\n    for x in {1, 2, 3}:\n        print(x)\n",
    "def f(xs):\n    return [x for x in {c for c in xs}]\n",
    "def f(a, xs):\n    for x in a | set(xs):\n        print(x)\n",
])
def test_rep003_bare_set_iteration_detected(snippet):
    assert rules_of(lint(snippet)) == ["REP003"]


def test_rep003_clean_for_sorted_and_fromkeys():
    clean = """
    def f(xs):
        for x in sorted(set(xs)):
            print(x)
        for x in dict.fromkeys(xs):
            print(x)
        if 3 in {1, 2, 3}:      # membership, not iteration
            return set(xs)      # building a set is fine
    """
    assert lint(clean) == []


# ------------------------------------------------------------------ REP004
def test_rep004_bare_except_detected():
    snippet = """
    def f():
        try:
            return 1
        except:
            return 2
    """
    assert rules_of(lint(snippet)) == ["REP004"]


def test_rep004_clean_for_named_exceptions():
    clean = """
    def f():
        try:
            return 1
        except (ValueError, KeyError):
            return 2
        except Exception:
            return 3
    """
    assert lint(clean) == []


# ------------------------------------------------------------------ REP005
def test_rep005_hot_path_class_without_slots_detected():
    snippet = "class Msg:\n    def __init__(self):\n        self.x = 1\n"
    assert rules_of(lint(snippet, path=HOT)) == ["REP005"]
    # The same class outside the hot-path module set is fine.
    assert lint(snippet, path="src/repro/harness/cli.py") == []


def test_rep005_clean_for_slotted_and_exempt_classes():
    clean = """
    from dataclasses import dataclass
    from enum import Enum

    class Msg:
        __slots__ = ("x",)

    class Kind(Enum):
        A = 1

    class TransportError(RuntimeError):
        pass

    @dataclass(frozen=True, slots=True)
    class Point:
        x: int
    """
    assert lint(clean, path=HOT) == []


# ------------------------------------------------------------------ REP006
@pytest.mark.parametrize("snippet", [
    "def f(mpi):\n    yield from mpi.isend(1.0, dest=1)\n",
    "def f(mpi):\n    yield from mpi.irecv(source=0)\n",
    "async def f(mpi):\n    await mpi.isend(1.0, dest=1)\n",
    "def f(mpi):\n    _ = yield from mpi.irecv(source=0)\n",
])
def test_rep006_discarded_request_detected(snippet):
    assert rules_of(lint(snippet)) == ["REP006"]


def test_rep006_clean_when_request_kept():
    clean = """
    def f(mpi):
        req = yield from mpi.isend(1.0, dest=1)
        yield from mpi.wait(req)
        yield from mpi.send(2.0, dest=1)   # blocking send returns no request
    """
    assert lint(clean) == []


# ------------------------------------------------------------------ REP007
@pytest.mark.parametrize("snippet", [
    # Constant-bound Struct: 4 fields, 3 values packed.
    "import struct\n_REC = struct.Struct('<BIIH')\n"
    "def f(b):\n    return _REC.pack(1, 2, 3)\n",
    # pack_into's buf/offset lead args must not count as values.
    "import struct\n_REC = struct.Struct('<BIIH')\n"
    "def f(b):\n    _REC.pack_into(b, 0, 1, 2, 3, 4, 5)\n",
    # Direct module call with a literal format.
    "import struct\n\ndef f():\n    return struct.pack('<II', 1, 2, 3)\n",
    # Unpack side: 3 targets for a 4-field format.
    "import struct\n_REC = struct.Struct('<BIIH')\n"
    "def f(p):\n    kind, seq, index = _REC.unpack_from(p, 0)\n",
    # from struct import Struct binding.
    "from struct import Struct\n_LEN = Struct('<I')\n"
    "def f():\n    return _LEN.pack(1, 2)\n",
])
def test_rep007_struct_arity_mismatch_detected(snippet):
    assert rules_of(lint(snippet)) == ["REP007"]


def test_rep007_clean_for_matching_starred_and_repeats():
    clean = """
    import struct

    _REC = struct.Struct("<BIIH")
    _SCALARS = struct.Struct("<13d")
    _LEN = struct.Struct("<I")

    def f(b, vals, payload):
        _REC.pack_into(b, 0, 1, 2, 3, 4)        # 4 values, 4 fields
        _SCALARS.pack(*vals)                    # starred: not countable
        (n,) = _LEN.unpack(payload)             # 1 target, 1 field
        kind, seq, index, mask = _REC.unpack_from(payload, 0)
        n2 = _LEN.unpack_from(payload, 4)[0]    # subscript, not a tuple
        return struct.pack("<3i", 1, 2, 3), n, n2
    """
    assert lint(clean) == []


# ------------------------------------------------------------------ REP008
@pytest.mark.parametrize("snippet", [
    # View fed straight into a struct pack.
    "def f(rec, d):\n    return rec.pack(*d.values())\n",
    # CSV row from a view.
    "def f(w, d):\n    w.writerow(d.values())\n",
    # Through a local variable.
    "def f(w, d):\n    vals = d.values()\n    w.writerow(vals)\n",
    # list() wrapper does not impose an order.
    "def f(w, d):\n    w.writerow(list(d.keys()))\n",
    # Comprehension iterating the view into a literal-string join.
    "def f(d):\n    return ','.join(str(v) for v in d.values())\n",
])
def test_rep008_dict_order_leak_detected(snippet):
    assert rules_of(lint(snippet)) == ["REP008"]


def test_rep008_clean_for_sorted_views():
    clean = """
    def f(w, rec, d):
        w.writerow(sorted(d.values()))
        rec.pack(*sorted(d.items()))
        for k in d.keys():          # iteration alone is deterministic
            print(k, d[k])
        return ",".join(str(k) for k in sorted(d))
    """
    assert lint(clean) == []


# ------------------------------------------------------------------ REP009
def test_rep009_transitive_rng_call_chain_detected():
    src = """
    import random

    def jitter():
        return random.random()  # repro: noqa[REP002] - fixture offender

    def delay():
        return 1.0 + jitter()

    def schedule(t):
        return t + delay()
    """
    findings = lint(src)
    assert rules_of(findings) == ["REP009"]
    # Both the jitter() and delay() call sites are flagged, with a chain.
    assert len(findings) == 2
    assert any("delay() -> jitter()" in f.message for f in findings)


def test_rep009_direct_call_is_rep002_not_rep009():
    src = "import random\n\ndef f():\n    return random.random()\n"
    assert rules_of(lint(src)) == ["REP002"]


def test_rep009_clean_for_seeded_chains():
    clean = """
    import numpy as np

    def jitter(rng):
        return rng.random()

    def delay(rng):
        return 1.0 + jitter(rng)

    def run(seed):
        return delay(np.random.default_rng(seed))
    """
    assert lint(clean) == []


# ------------------------------------------------------------------ REP010
def test_rep010_mutable_default_in_hot_path_detected():
    snippet = "def enqueue(item, queue=[]):\n    queue.append(item)\n"
    assert rules_of(lint(snippet, path=HOT)) == ["REP010"]
    # Same code outside the hot-path module set: no finding.
    assert lint(snippet, path="src/repro/harness/cli.py") == []


@pytest.mark.parametrize("default", ["{}", "set()", "dict()", "list()"])
def test_rep010_all_mutable_default_forms(default):
    snippet = f"def f(x, acc={default}):\n    return acc\n"
    assert rules_of(lint(snippet, path=HOT)) == ["REP010"]


def test_rep010_clean_for_none_and_immutable_defaults():
    clean = """
    def f(x, acc=None, tags=(), name="", k=3):
        if acc is None:
            acc = []
        return acc, tags, name, k
    """
    assert lint(clean, path=HOT) == []


# ------------------------------------------------------------- suppressions
def test_noqa_suppresses_named_rule_only():
    hit = "import time\n\ndef f():\n    return time.time()\n"
    ok = ("import time\n\ndef f():\n"
          "    return time.time()  # repro: noqa[REP001] - heartbeat\n")
    wrong = ("import time\n\ndef f():\n"
             "    return time.time()  # repro: noqa[REP002]\n")
    bare = ("import time\n\ndef f():\n"
            "    return time.time()  # repro: noqa\n")
    assert rules_of(lint(hit)) == ["REP001"]
    assert lint(ok) == []
    assert rules_of(lint(wrong)) == ["REP001"]  # wrong code: still fires
    assert lint(bare) == []  # bare form suppresses every rule on the line


def test_noqa_multiple_rules_one_line():
    src = ("import time, random\n\ndef f():\n"
           "    return time.time() + random.random()"
           "  # repro: noqa[REP001, REP002]\n")
    assert lint(src) == []


# ------------------------------------------------------------------ drivers
def test_select_filters_and_rejects_unknown():
    src = ("import time\n\ndef f(xs):\n"
           "    for x in set(xs):\n        print(time.time())\n")
    assert rules_of(lint(src)) == ["REP001", "REP003"]
    assert rules_of(lint(src, select=["REP003"])) == ["REP003"]
    with pytest.raises(ValueError, match="REP999"):
        lint(src, select=["REP999"])


def test_findings_carry_sorted_provenance():
    src = ("import time\n\ndef f(xs):\n"
           "    for x in set(xs):\n        print(time.time())\n")
    findings = lint(src, path="a/b.py")
    assert [f.rule for f in findings] == ["REP001", "REP003"]
    f = findings[0]
    assert f.path == "a/b.py" and f.line == 5
    assert f.format().startswith("a/b.py:5:")
    assert f.to_dict()["rule"] == "REP001"


def test_main_text_json_and_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    good = tmp_path / "good.py"
    good.write_text("def f(sim):\n    return sim.now\n")

    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "REP001" in out and "1 finding(s)" in out

    assert main([str(good)]) == 0
    assert "clean: no findings" in capsys.readouterr().out

    assert main(["--format", "json", str(tmp_path)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert [d["rule"] for d in doc] == ["REP001"]
    assert doc[0]["path"] == str(bad)

    assert main(["--select", "REP004", str(bad)]) == 0
    assert main(["--list-rules", str(bad)]) == 0
    listed = capsys.readouterr().out
    assert all(code in listed for code in REP_RULES)


def test_main_rejects_unknown_select_rule(tmp_path, capsys):
    mod = tmp_path / "m.py"
    mod.write_text("def f():\n    return 1\n")
    with pytest.raises(SystemExit) as exc:
        main(["--select", "REP001,REP999", str(mod)])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "unknown rule 'REP999'" in err
    assert "valid choices:" in err and "REP001" in err


# ------------------------------------------------------------- check-noqa
def test_check_noqa_flags_stale_suppressions(tmp_path, capsys):
    mod = tmp_path / "m.py"
    mod.write_text(
        "import time\n\n"
        "def f():\n"
        "    t = time.time()  # repro: noqa[REP001] - live keeper\n"
        "    x = 1  # repro: noqa[REP002] - nothing fires here\n"
        "    return t + x\n"
    )
    assert main(["--check-noqa", str(mod)]) == 1
    out = capsys.readouterr().out
    assert "unused suppression noqa[REP002]" in out
    assert "m.py:5" in out
    # The live REP001 keeper is not reported.
    assert "noqa[REP001]" not in out


def test_check_noqa_partial_staleness_reports_stale_subset(tmp_path, capsys):
    mod = tmp_path / "m.py"
    mod.write_text(
        "import time\n\n"
        "def f():\n"
        "    return time.time()  # repro: noqa[REP001,REP003] - half stale\n"
    )
    assert main(["--check-noqa", str(mod)]) == 1
    assert "unused suppression noqa[REP003]" in capsys.readouterr().out


def test_check_noqa_ignores_docstring_mentions(tmp_path, capsys):
    mod = tmp_path / "m.py"
    mod.write_text(
        '"""Suppress with ``# repro: noqa[REP001]`` on the line."""\n\n'
        "def f():\n    return 1\n"
    )
    assert main(["--check-noqa", str(mod)]) == 0
    assert "clean: no findings" in capsys.readouterr().out


def test_check_noqa_bare_form(tmp_path, capsys):
    mod = tmp_path / "m.py"
    mod.write_text("def f():\n    return 1  # repro: noqa\n")
    assert main(["--check-noqa", str(mod)]) == 1
    assert "bare noqa" in capsys.readouterr().out


def test_repo_source_tree_has_no_stale_noqa():
    from repro.sanitize.lint import check_noqa_paths

    stale = check_noqa_paths([SRC])
    assert stale == [], "\n".join(u.format() for u in stale)


# ---------------------------------------------------------------- self-gate
def test_repo_source_tree_is_lint_clean():
    """The gate CI enforces: the repo's own src/ carries zero findings."""
    findings = lint_paths([SRC])
    assert findings == [], "\n".join(f.format() for f in findings)
