"""Epoch-aware sanitizer rules for passive-target RMA.

The simulator is deliberately forgiving (puts snapshot their payload at
issue time), so real-MPI hazards around lock epochs only surface through
the sanitizer: SAN001 for an origin put buffer mutated before its flush,
SAN009 for an epoch still open at finalize.
"""

from __future__ import annotations

import numpy as np

from repro.smpi import ArrayExposure

from .conftest import run_sanitized

#: past the 64 KiB Ethernet eager threshold (rendezvous regime).
BIG = 20_000


def rules_of(san) -> list[str]:
    return sorted({f.rule for f in san.findings})


def test_san001_epoch_put_buffer_mutated_before_flush():
    def main(mpi):
        win = yield from mpi.win_create(ArrayExposure(np.zeros(BIG)))
        if mpi.rank == 0:
            yield from mpi.win_lock(win, 1)
            buf = np.ones(BIG)
            yield from mpi.win_put(win, 1, (0, buf))
            buf[0] = -1.0  # BUG: origin buffer is pledged until the flush
            yield from mpi.win_unlock(win, 1)
        else:
            yield from mpi.compute(0.001)
        yield from mpi.barrier()

    san, err = run_sanitized(main, 2)
    assert err is None
    assert rules_of(san) == ["SAN001"]
    (f,) = san.findings
    assert f.rank == 0
    assert "lock epoch" in f.message


def test_epoch_put_clean_when_mutated_after_unlock():
    def main(mpi):
        win = yield from mpi.win_create(ArrayExposure(np.zeros(BIG)))
        if mpi.rank == 0:
            yield from mpi.win_lock(win, 1)
            buf = np.ones(BIG)
            yield from mpi.win_put(win, 1, (0, buf))
            yield from mpi.win_unlock(win, 1)
            buf[0] = -1.0  # fine: the epoch closed, the buffer is mine again
        else:
            yield from mpi.compute(0.001)
        yield from mpi.barrier()

    san, err = run_sanitized(main, 2)
    assert err is None and san.findings == []


def test_epoch_put_clean_when_mutated_after_explicit_flush():
    """win_flush releases the pledge mid-epoch; mutation after it is legal."""

    def main(mpi):
        win = yield from mpi.win_create(ArrayExposure(np.zeros(BIG)))
        if mpi.rank == 0:
            yield from mpi.win_lock(win, 1)
            buf = np.ones(BIG)
            yield from mpi.win_put(win, 1, (0, buf))
            yield from mpi.win_flush(win, 1)
            buf[0] = -1.0
            yield from mpi.win_unlock(win, 1)
        else:
            yield from mpi.compute(0.001)
        yield from mpi.barrier()

    san, err = run_sanitized(main, 2)
    assert err is None and san.findings == []


def test_san009_epoch_leak_detected():
    def main(mpi):
        win = yield from mpi.win_create(ArrayExposure(np.zeros(4)))
        if mpi.rank == 0:
            yield from mpi.win_lock(win, 1)
            # BUG: finalizes with the epoch still open (never unlocks).
            mpi.finalize()
            return
        yield from mpi.compute(0.001)

    san, err = run_sanitized(main, 2)
    assert err is None
    assert rules_of(san) == ["SAN009"]
    (f,) = san.findings
    assert f.rank == 0


def test_san009_clean_when_unlocked():
    def main(mpi):
        win = yield from mpi.win_create(ArrayExposure(np.zeros(4)))
        if mpi.rank == 0:
            yield from mpi.win_lock(win, 1)
            yield from mpi.win_put(win, 1, (0, np.array([2.0])))
            yield from mpi.win_unlock(win, 1)
        else:
            yield from mpi.compute(0.001)
        yield from mpi.barrier()

    san, err = run_sanitized(main, 2)
    assert err is None and san.findings == []
