"""One deliberately-buggy fixture + one clean fixture per runtime rule.

Every positive fixture asserts *exactly* its expected rule code fires (no
collateral findings), and every clean twin asserts zero findings — the
sanitizer must neither miss the seeded bug nor cry wolf on correct MPI.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.redistribution import Dataset, FieldSpec
from repro.sanitize import Sanitizer, SanitizerError
from repro.simulate import DeadlockError
from repro.smpi import ArrayExposure
from repro.smpi.collectives import alltoallv_pairwise

from .conftest import run_sanitized

#: well past the 64 KiB Ethernet eager threshold -> rendezvous protocol,
#: i.e. a real in-flight window during which buffer mutation is a race.
BIG = 20_000  # float64 rows -> 160 kB


def rules_of(san: Sanitizer) -> list[str]:
    return sorted({f.rule for f in san.findings})


# ------------------------------------------------------------------ SAN001
def test_san001_send_buffer_race_detected():
    def main(mpi):
        if mpi.rank == 0:
            buf = np.ones(BIG)
            req = yield from mpi.isend(buf, dest=1)
            buf[0] = -1.0  # BUG: mutates the origin buffer mid-flight
            yield from mpi.wait(req)
        else:
            yield from mpi.recv(source=0)

    san, err = run_sanitized(main, 2)
    assert err is None
    assert rules_of(san) == ["SAN001"]
    (f,) = san.findings
    assert f.rank == 0 and f.detail["peer"] == 1


def test_san001_clean_when_mutated_after_wait():
    def main(mpi):
        if mpi.rank == 0:
            buf = np.ones(BIG)
            req = yield from mpi.isend(buf, dest=1)
            yield from mpi.wait(req)
            buf[0] = -1.0  # fine: the operation completed locally
        else:
            yield from mpi.recv(source=0)

    san, err = run_sanitized(main, 2)
    assert err is None and san.findings == []


def test_san001_rma_put_buffer_race_detected():
    def main(mpi):
        local = np.zeros(BIG)
        win = yield from mpi.win_create(ArrayExposure(local))
        if mpi.rank == 0:
            buf = np.ones(BIG)
            done = yield from mpi.win_put(win, 1, (0, buf))
            buf[0] = -1.0  # BUG: origin buffer of a pending put
            yield from mpi.win_fence(win)
            assert done.triggered
        else:
            yield from mpi.win_fence(win)

    san, err = run_sanitized(main, 2)
    assert err is None
    assert rules_of(san) == ["SAN001"]
    assert san.findings[0].detail["kind"] == "put"


# ------------------------------------------------------------------ SAN002
def test_san002_pending_recv_data_read_detected():
    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.sleep(0.01)
            yield from mpi.send(np.arange(4.0), dest=1)
        else:
            req = yield from mpi.irecv(source=0)
            _ = req.data  # BUG: undefined before wait/test under real MPI
            yield from mpi.wait(req)

    san, err = run_sanitized(main, 2)
    assert err is None
    assert rules_of(san) == ["SAN002"]


def test_san002_clean_when_read_after_wait():
    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.send(np.arange(4.0), dest=1)
        else:
            req = yield from mpi.irecv(source=0)
            yield from mpi.wait(req)
            assert req.data is not None

    san, err = run_sanitized(main, 2)
    assert err is None and san.findings == []


# ------------------------------------------------------------------ SAN003
def test_san003_request_leak_detected():
    def main(mpi):
        if mpi.rank == 1:
            # BUG: posts a receive that never matches and never waits on it.
            yield from mpi.irecv(source=0, tag=9)  # repro: noqa[REP006] - deliberate fixture
            mpi.finalize()
        else:
            yield from mpi.sleep(0.001)

    san, err = run_sanitized(main, 2)
    assert err is not None  # the hard finalize check also fires
    assert rules_of(san) == ["SAN003"]
    (f,) = san.findings
    assert f.rank == 1 and f.detail["kind"] == "recv"


def test_san003_clean_when_request_completed():
    def main(mpi):
        if mpi.rank == 1:
            req = yield from mpi.irecv(source=0, tag=9)
            yield from mpi.wait(req)
        else:
            yield from mpi.send(1.5, dest=1, tag=9)
        mpi.finalize()

    san, err = run_sanitized(main, 2)
    assert err is None and san.findings == []


# ------------------------------------------------------------------ SAN004
def test_san004_unmatched_message_detected():
    def main(mpi):
        if mpi.rank == 0:
            # Eager send completes at injection, so rank 0 exits cleanly...
            req = yield from mpi.isend(np.arange(8.0), dest=1)
            yield from mpi.wait(req)
        else:
            yield from mpi.sleep(0.01)  # BUG: never posts the receive
        mpi.finalize()

    san, err = run_sanitized(main, 2)
    assert err is not None  # rank 1 finalizes with pending traffic
    assert rules_of(san) == ["SAN004"]
    (f,) = san.findings
    assert f.rank == 1 and f.detail["src_gid"] == 0


def test_san004_clean_when_consumed():
    def main(mpi):
        if mpi.rank == 0:
            req = yield from mpi.isend(np.arange(8.0), dest=1)
            yield from mpi.wait(req)
        else:
            yield from mpi.recv(source=0)
        mpi.finalize()

    san, err = run_sanitized(main, 2)
    assert err is None and san.findings == []


# ------------------------------------------------------------------ SAN005
def test_san005_use_after_abort_detected():
    def main(mpi):
        if mpi.rank == 0:
            mpi.world.abort_comm(mpi.comm_world)
            # BUG: traffic on a communicator a recovery policy abandoned.
            yield from mpi.isend(1.0, dest=1)
        yield from mpi.sleep(0.001)

    san, err = run_sanitized(main, 2)
    assert err is None
    assert rules_of(san) == ["SAN005"]
    assert san.findings[0].rank == 0


def test_san005_clean_on_live_communicator():
    def main(mpi):
        if mpi.rank == 0:
            req = yield from mpi.isend(1.0, dest=1)
            yield from mpi.wait(req)
        else:
            yield from mpi.recv(source=0)

    san, err = run_sanitized(main, 2)
    assert err is None and san.findings == []


# ------------------------------------------------------------------ SAN006
def test_san006_alltoallv_mismatch_detected():
    def main(mpi):
        if mpi.rank == 0:
            # BUG: sends to peer 1, but peer 1 does not list rank 0.
            yield from alltoallv_pairwise(
                mpi, {1: np.arange(4.0)}, [], mpi.comm_world
            )
        else:
            yield from alltoallv_pairwise(mpi, {}, [], mpi.comm_world)

    san, err = run_sanitized(main, 2)
    assert err is None
    assert rules_of(san) == ["SAN006"]
    assert san.findings[0].detail["direction"] == "send"


def test_san006_clean_when_pairings_agree():
    def main(mpi):
        if mpi.rank == 0:
            out = yield from alltoallv_pairwise(
                mpi, {1: np.arange(4.0)}, [], mpi.comm_world
            )
            assert out == {}
        else:
            out = yield from alltoallv_pairwise(
                mpi, {}, [0], mpi.comm_world
            )
            np.testing.assert_array_equal(out[0], np.arange(4.0))

    san, err = run_sanitized(main, 2)
    assert err is None and san.findings == []


def test_san006_member_never_entering_detected_at_detach():
    def main(mpi):
        if mpi.rank == 0:
            # BUG: only rank 0 enters the collective.  The non-blocking
            # variant posts nothing for empty maps, so the run completes
            # and only the detach-time membership pass can catch it.
            yield from mpi.ialltoallv({}, [])
        yield from mpi.sleep(0.001)

    san, err = run_sanitized(main, 2)
    assert err is None
    assert rules_of(san) == ["SAN006"]
    assert "not by gids [1]" in san.findings[0].message


# ------------------------------------------------------------------ SAN007
def _dataset():
    specs = (FieldSpec("x", "dense", constant=True),)
    return Dataset.create(
        8, specs, 0, 8, data={"x": np.arange(8.0)}
    )


def test_san007_memcpy_overlap_race_detected():
    san = Sanitizer()
    ds = _dataset()

    class _Ctx:
        gid = 0

    token = san.on_memcpy_begin(_Ctx(), ds, 0, 4, ["x"])
    ds.stores["x"].data[1] = 99.0  # BUG: source mutated inside the window
    san.on_memcpy_end(token)
    assert rules_of(san) == ["SAN007"]
    assert san.findings[0].detail == {"lo": 0, "hi": 4, "names": ["x"]}


def test_san007_clean_when_source_untouched():
    san = Sanitizer()
    ds = _dataset()

    class _Ctx:
        gid = 0

    token = san.on_memcpy_begin(_Ctx(), ds, 0, 4, ["x"])
    ds.stores["x"].data[6] = 99.0  # outside the copy window's rows
    san.on_memcpy_end(token)
    assert san.findings == []


# ------------------------------------------------------------------ SAN008
def test_san008_deadlock_emits_wait_for_graph():
    def main(mpi):
        # BUG: classic head-to-head blocking receives, nobody sends.
        peer = 1 - mpi.rank
        yield from mpi.recv(source=peer, tag=5)

    san, err = run_sanitized(main, 2)
    assert isinstance(err, DeadlockError)
    assert rules_of(san) == ["SAN008"]
    assert {f.rank for f in san.findings} == {0, 1}
    # The error message itself carries the rank -> peer/tag explanation.
    text = str(err)
    assert "wait-for graph" in text
    assert "recv(src=1, tag=5" in text and "recv(src=0, tag=5" in text
    assert "wait cycle: gid 0 -> gid 1 -> gid 0" in text
    # And the structured details survive on the exception object.
    assert any("gid 0: blocked in" in line for line in err.details)


def test_san008_clean_run_has_no_deadlock_details():
    def main(mpi):
        peer = 1 - mpi.rank
        if mpi.rank == 0:
            yield from mpi.send(1.0, dest=peer, tag=5)
            yield from mpi.recv(source=peer, tag=6)
        else:
            yield from mpi.recv(source=peer, tag=5)
            yield from mpi.send(2.0, dest=peer, tag=6)

    san, err = run_sanitized(main, 2)
    assert err is None and san.findings == []


# --------------------------------------------------------------- reporting
def test_report_flush_and_assert_clean():
    def main(mpi):
        if mpi.rank == 1:
            yield from mpi.irecv(source=0, tag=9)  # repro: noqa[REP006] - deliberate fixture
            mpi.finalize()
        else:
            yield from mpi.sleep(0.001)

    san, _err = run_sanitized(main, 2)
    assert "SAN003" in san.report()
    assert san.findings_by_rule() == {"SAN003": 1}
    with pytest.raises(SanitizerError) as exc:
        san.assert_clean()
    assert exc.value.findings == san.findings

    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    san.flush_to(reg)
    doc = reg.to_dict()
    assert doc["counters"]["sanitizer_findings{rule=SAN003}"] == 1
    (rec,) = doc["records"]["sanitizer_findings"]
    assert rec["rule"] == "SAN003" and rec["rank"] == 1


def test_detached_world_has_no_sanitizer_hooks():
    """Attach/detach symmetry: detach restores all cooperative pointers."""
    from repro.cluster import ETHERNET_10G, Machine
    from repro.simulate import Simulator
    from repro.smpi import MpiWorld
    from repro.smpi import requests as _requests

    sim = Simulator()
    machine = Machine(sim, 1, 2, ETHERNET_10G, seed=0)
    world = MpiWorld(machine)
    san = Sanitizer().attach(world)
    assert world.sanitizer is san and _requests._SANITIZER is san
    assert san._deadlock_details in sim.diagnostics
    san.detach()
    assert world.sanitizer is None and _requests._SANITIZER is None
    assert sim.diagnostics == []
    with pytest.raises(RuntimeError):
        san.detach()
