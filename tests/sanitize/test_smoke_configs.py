"""Sanitizer smoke over every reconfiguration strategy.

The production claim behind ``--sanitize``: the repo's own redistribution
stack is hazard-free.  Running all 18 configurations under an attached
sanitizer must produce zero findings — and because the sanitizer is an
observer, it must not perturb the simulated results either.
"""

from __future__ import annotations

from repro.harness.runner import RunSpec, run_one, run_sweep
from repro.malleability.config import ALL_CONFIGS
from repro.sanitize import Sanitizer

KEYS = [c.key for c in ALL_CONFIGS]


def test_all_18_configs_sanitize_clean():
    """One shrink + one grow pair across every configuration: no findings
    (run_sweep raises SanitizerError otherwise)."""
    assert len(KEYS) == 18
    rs = run_sweep(
        [(4, 2), (2, 4)], KEYS, ["ethernet"],
        scale="tiny", repetitions=1, sanitize=True,
    )
    assert len(rs.results) == 2 * len(KEYS)


def test_sanitizer_does_not_perturb_results():
    """Observer contract: the sanitized sweep's CSV is byte-identical to
    the plain sweep's (same seeds, same simulated timeline)."""
    plain = run_sweep(
        [(2, 4)], KEYS, ["ethernet"], scale="tiny", repetitions=1,
    )
    sanitized = run_sweep(
        [(2, 4)], KEYS, ["ethernet"], scale="tiny", repetitions=1,
        sanitize=True,
    )
    assert plain.to_csv() == sanitized.to_csv()


def test_infiniband_and_faulted_cells_sanitize_clean():
    """The aggressive-eager fabric and the failure path stay clean too:
    dead-peer requests and aborted communicators must be excused, not
    reported."""
    rs = run_sweep(
        [(4, 2)], ["merge-p2p-t"], ["infiniband"],
        scale="tiny", repetitions=1, sanitize=True,
    )
    assert len(rs.results) == 1

    san = Sanitizer()
    spec = RunSpec(4, 2, "merge-p2p-s", "ethernet", "tiny", 0,
                   faults="crash@redist+0.002:node=1")
    run_one(spec, sanitizer=san)
    assert san.findings == []
