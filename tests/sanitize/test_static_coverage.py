"""SAN↔STA differential coverage map — test-enforced.

The runtime sanitizer (``SAN0xx``) and the static verifier (``STA0xx``)
split the correctness surface: whatever is visible in the *schedule*
(who sends what to whom, in which epochs) the static pass proves for
every config before anything runs; whatever is data- or timing-dependent
stays runtime-only.  :data:`COVERAGE` records that split rule by rule,
and this module enforces it two ways:

* the map must stay total over ``SAN_RULES`` (adding a SAN rule without
  classifying its static analog fails the suite);
* every statically-detectable SAN rule gets a mini-fixture seeding the
  schedule-level analog of the runtime bug fixture in
  ``test_runtime_rules.py``, and the mapped STA rule must catch it.
"""

from __future__ import annotations

from repro.sanitize.findings import SAN_RULES, STA_RULES
from repro.sanitize.static_check import CommGraph, RankNode, check_graph

#: SAN rule -> the STA rule that proves its schedule-level analog
#: statically, or None when the bug class is inherently dynamic.
COVERAGE: dict[str, str | None] = {
    # Buffer reuse races depend on *when* user code touches payload
    # memory relative to completion — invisible in the schedule.
    "SAN001": None,
    "SAN002": None,
    # A request pending at finalize is, statically, a posted receive with
    # no matching send (or vice versa): unmatched traffic.
    "SAN003": "STA004",
    # Traffic never consumed by a matching receive: the same static shape
    # from the sender's side.
    "SAN004": "STA004",
    # Use-after-abort needs a failure injection mid-run; schedules are
    # elaborated for the no-fault path.
    "SAN005": None,
    # Inconsistent alltoallv pairings are fully visible in the declared
    # send_to/recv_from tables.
    "SAN006": "STA005",
    # The memcpy overlap window is a runtime interleaving artifact.
    "SAN007": None,
    # A wait-for cycle is exactly a schedule that cannot retire in any
    # order: the abstract execution's fixpoint stall.
    "SAN008": "STA006",
    # An epoch still open at finalize is a lock without its unlock.
    "SAN009": "STA008",
}


def _graph(ops: dict[str, list[dict]]) -> CommGraph:
    return CommGraph(
        label="coverage",
        nodes=[RankNode(name) for name in ops],
        ops=ops,
    )


def _rules(ops: dict[str, list[dict]]) -> set[str]:
    return {f.rule for f in check_graph(_graph(ops))}


class TestMapShape:
    def test_map_is_total_over_san_rules(self):
        assert set(COVERAGE) == set(SAN_RULES)

    def test_mapped_rules_exist(self):
        mapped = {sta for sta in COVERAGE.values() if sta is not None}
        assert mapped <= set(STA_RULES)

    def test_split_is_documented(self):
        # The provability split must stay discoverable from the verifier's
        # own docs, which point back at this map.
        import repro.sanitize.static_check as sc
        assert "test_static_coverage" in (sc.__doc__ or "")


class TestStaticAnalogs:
    """Each statically-detectable SAN fixture, reduced to its schedule."""

    def test_san003_pending_receive_analog(self):
        # Runtime fixture: an irecv posted (source 0, tag 9) that nothing
        # ever matches, still pending at finalize.
        ops = {
            "r0": [{"op": "irecv", "peer_node": "r1", "tag": 9}],
            "r1": [],
        }
        assert COVERAGE["SAN003"] in _rules(ops)

    def test_san004_unconsumed_message_analog(self):
        # Runtime fixture: an isend whose peer never posts the receive.
        ops = {
            "r0": [{"op": "isend", "peer_node": "r1", "tag": 4}],
            "r1": [],
        }
        assert COVERAGE["SAN004"] in _rules(ops)

    def test_san006_inconsistent_alltoallv_analog(self):
        # Runtime fixture: rank 0 declares a send to rank 1, rank 1
        # declares an empty receive list.
        graph = CommGraph(
            label="coverage",
            nodes=[RankNode("r0", src_rank=0), RankNode("r1", dst_rank=1)],
            ops={
                "r0": [{"op": "alltoallv", "send_to": {1: 8},
                        "recv_from": []}],
                "r1": [{"op": "alltoallv", "send_to": {},
                        "recv_from": []}],
            },
            src_node={0: "r0"},
            dst_node={1: "r1"},
        )
        rules = {f.rule for f in check_graph(graph)}
        assert COVERAGE["SAN006"] in rules

    def test_san008_deadlock_analog(self):
        # Runtime fixture: head-to-head blocking receives (tag 5).
        ops = {
            "r0": [{"op": "recv", "peer_node": "r1", "tag": 5},
                   {"op": "send", "peer_node": "r1", "tag": 5}],
            "r1": [{"op": "recv", "peer_node": "r0", "tag": 5},
                   {"op": "send", "peer_node": "r0", "tag": 5}],
        }
        assert COVERAGE["SAN008"] in _rules(ops)

    def test_san009_epoch_leak_analog(self):
        # Runtime fixture: a win_lock epoch never unlocked before finalize.
        ops = {
            "r0": [{"op": "win_create"},
                   {"op": "lock", "peer_node": "r1", "mode": "shared",
                    "concurrent": False, "order": 0}],
            "r1": [{"op": "win_create"}],
        }
        assert COVERAGE["SAN009"] in _rules(ops)

    def test_dynamic_only_rules_have_no_static_fixture(self):
        # The None entries are the provability boundary; this guard makes
        # adding a static analog require updating the map first.
        dynamic_only = {san for san, sta in COVERAGE.items() if sta is None}
        assert dynamic_only == {"SAN001", "SAN002", "SAN005", "SAN007"}
