"""Static plan & protocol verifier (STA0xx) tests.

Mutation-style: every STA rule gets a seeded bug that it — and it alone,
where isolation is achievable — must catch, plus clean fixtures proving
the shipped matrix verifies finding-free.

Plans under mutation are built through the *direct* constructor (never
``RedistributionPlan.block``): the factory is lru-cached and shared, so
tampering with a cached instance would poison every other test.
"""

from __future__ import annotations

import json

import pytest

from repro.malleability.config import ALL_CONFIGS
from repro.redistribution.blockdist import block_offsets
from repro.redistribution.plan import RedistributionPlan, Transfer
from repro.sanitize.static_check import (
    CommGraph,
    RankNode,
    check_graph,
    elaborate,
    main,
    verify_config,
    verify_matrix,
    verify_plan,
)


def fresh_plan(n_rows=10, ns=2, nt=2):
    """An uncached, tamper-safe plan instance."""
    return RedistributionPlan(
        block_offsets(n_rows, ns), block_offsets(n_rows, nt)
    )


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ===================================================================== plans
class TestVerifyPlan:
    @pytest.mark.parametrize("ns,nt", [(4, 8), (8, 4), (6, 6), (1, 7), (5, 1)])
    def test_block_plans_are_clean(self, ns, nt):
        assert verify_plan(fresh_plan(1000, ns, nt)) == []

    @pytest.mark.parametrize("ns,nt", [(4, 8), (8, 4)])
    def test_movement_minimizing_plans_are_clean(self, ns, nt):
        plan = RedistributionPlan.movement_minimizing(1000, ns, nt)
        assert verify_plan(plan) == []

    def test_sta001_lost_rows(self):
        # Targets receive 9 of the 10 rows the sources send.
        plan = fresh_plan()
        plan._by_dst[1] = [Transfer(1, 1, 5, 9)]
        findings = verify_plan(plan)
        assert "STA001" in rules_of(findings)
        assert "lost" not in ""  # guard against silent pass
        msg = next(f for f in findings if f.rule == "STA001").message
        assert "10" in msg and "9" in msg

    def test_sta002_gap_and_overlap_isolated(self):
        # Conserving mutation: target 0 loses [4, 5) while target 1 double-
        # receives [9, 10) — total rows still balance, so STA001 must stay
        # silent and STA002 alone reports the gap and the overlap.
        plan = fresh_plan()
        plan._by_dst[0] = [Transfer(0, 0, 0, 4)]
        plan._by_dst[1] = [Transfer(1, 1, 5, 10), Transfer(1, 1, 9, 10)]
        findings = verify_plan(plan)
        assert "STA002" in rules_of(findings)
        assert "STA001" not in rules_of(findings)
        kinds = {f.detail["kind"] for f in findings if f.rule == "STA002"}
        assert kinds == {"gap", "overlap"}

    def test_sta003_out_of_range_read(self):
        # Source 0 owns rows [0, 5) but a transfer claims to read [7, 9).
        plan = fresh_plan()
        plan._by_src[0] = plan._by_src[0] + [Transfer(0, 1, 7, 9)]
        findings = verify_plan(plan)
        assert "STA003" in rules_of(findings)
        msg = next(f for f in findings if f.rule == "STA003").message
        assert "outside source 0" in msg

    def test_sta003_inverted_range(self):
        plan = fresh_plan()
        plan._by_src[0] = plan._by_src[0] + [Transfer(0, 0, 4, 4)]
        findings = verify_plan(plan)
        assert "STA003" in rules_of(findings)
        assert any("empty/inverted" in f.message for f in findings)

    def test_sta003_unknown_rank(self):
        plan = fresh_plan()
        plan._by_src[0] = plan._by_src[0] + [Transfer(0, 9, 0, 5)]
        findings = verify_plan(plan)
        assert any(f.rule == "STA003" and "target rank 9" in f.message
                   for f in findings)


# ============================================================== elaboration
class TestElaborate:
    def test_merge_topology_roles(self):
        graph = elaborate(fresh_plan(96, 4, 8), method="p2p", spawn="merge")
        assert graph.members == [f"r{i}" for i in range(8)]
        assert graph.src_node == {i: f"r{i}" for i in range(4)}
        assert graph.dst_node == {i: f"r{i}" for i in range(8)}

    def test_baseline_topology_roles(self):
        graph = elaborate(fresh_plan(96, 4, 8), method="col", spawn="baseline")
        assert graph.members == [f"s{i}" for i in range(4)] + [
            f"t{j}" for j in range(8)]

    def test_rma_coalesce_rejected(self):
        with pytest.raises(ValueError, match="coalesce"):
            elaborate(fresh_plan(), method="rma", spawn="merge",
                      coalesce=True)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="valid choices"):
            elaborate(fresh_plan(), method="rma", spawn="merge",
                      variant="bogus")

    @pytest.mark.parametrize("method", ["p2p", "col", "rma"])
    @pytest.mark.parametrize("spawn", ["merge", "baseline"])
    def test_all_method_spawn_graphs_clean(self, method, spawn):
        graph = elaborate(fresh_plan(96, 4, 8), method=method, spawn=spawn)
        assert check_graph(graph) == []

    @pytest.mark.parametrize("method", ["p2p", "col"])
    def test_coalesced_graphs_clean(self, method):
        graph = elaborate(fresh_plan(96, 8, 4), method=method, spawn="merge",
                          coalesce=True)
        assert check_graph(graph) == []

    def test_target_driven_rma_clean(self):
        graph = elaborate(fresh_plan(96, 4, 8), method="rma", spawn="merge",
                          variant="target")
        assert check_graph(graph) == []

    @pytest.mark.parametrize("method", ["p2p", "col", "rma"])
    @pytest.mark.parametrize("spawn", ["merge", "baseline"])
    def test_batched_graphs_clean(self, method, spawn):
        graph = elaborate(fresh_plan(96, 4, 8), method=method, spawn=spawn,
                          batch=True)
        assert check_graph(graph) == []

    @pytest.mark.parametrize("method", ["p2p", "col", "rma"])
    def test_batched_shapes_equal_scalar_shapes(self, method):
        # The compiled-plan lowering must reproduce the scalar lane's
        # message schedule op for op — peers, tags, row counts, order.
        plan = fresh_plan(1000, 8, 4)
        scalar = elaborate(plan, method=method, spawn="merge")
        batched = elaborate(plan, method=method, spawn="merge", batch=True)
        assert batched.ops == scalar.ops

    @pytest.mark.parametrize("method", ["p2p", "col"])
    def test_coalesced_batched_graphs_clean(self, method):
        # The shipping default: REPRO_BATCH=1 with coalescing enabled.
        plan = fresh_plan(96, 8, 4)
        graph = elaborate(plan, method=method, spawn="merge",
                          coalesce=True, batch=True)
        assert check_graph(graph) == []
        scalar = elaborate(plan, method=method, spawn="merge", coalesce=True)
        assert graph.ops == scalar.ops

    def test_target_driven_batched_rma_clean(self):
        graph = elaborate(fresh_plan(96, 4, 8), method="rma", spawn="merge",
                          variant="target", batch=True)
        assert check_graph(graph) == []

    def test_batched_lowering_bug_is_caught(self):
        # Corrupt one compiled program entry (a peer index off by one):
        # STA004/STA005 must flag the batched schedule even though the
        # scalar schedule verifies clean.
        plan = fresh_plan(96, 4, 8)
        prog = plan.compiled_sends(0)
        peers = prog.peers.copy()
        peers[0] = (peers[0] + 1) % plan.n_targets
        prog.peers = peers
        graph = elaborate(plan, method="p2p", spawn="merge", batch=True)
        findings = check_graph(graph)
        assert findings != []
        assert {"STA004"} <= set(rules_of(findings))


# ============================================================= graph checks
class TestMatching:
    def test_sta004_dropped_receive(self):
        # Remove one tag-77 irecv from a P2P target: the matching source
        # isend now has no receiver.
        graph = elaborate(fresh_plan(96, 4, 8), method="p2p", spawn="merge")
        victim = graph.ops["r7"]
        idx = next(i for i, op in enumerate(victim) if op["op"] == "irecv")
        del victim[idx]
        findings = check_graph(graph)
        assert "STA004" in rules_of(findings)

    def test_sta004_notification_budget_mismatch(self):
        # Inflate an exposing target's notify threshold: fewer puts land
        # than the wait demands.
        graph = elaborate(fresh_plan(96, 4, 8), method="rma", spawn="merge")
        wait = next(op for op in graph.ops["r7"] if op["op"] == "notify_wait")
        wait["threshold"] += 1
        findings = check_graph(graph)
        assert "STA004" in rules_of(findings)
        assert any("notification threshold" in f.message for f in findings)

    def test_sta004_send_to_nonexistent_peer(self):
        graph = CommGraph(
            label="handcrafted",
            nodes=[RankNode("a"), RankNode("b")],
            ops={
                "a": [{"op": "isend", "peer_node": "ghost", "tag": 3}],
                "b": [],
            },
        )
        findings = check_graph(graph)
        assert rules_of(findings) == ["STA004"]
        assert "nonexistent peer" in findings[0].message


class TestCollectives:
    def test_sta005_truncated_recv_list(self):
        # A COL target drops one source from its alltoallv recv_from: the
        # source still declares the send.
        graph = elaborate(fresh_plan(96, 4, 8), method="col",
                          spawn="baseline")
        vop = next(op for op in graph.ops["t7"] if op["op"] == "alltoallv")
        assert vop["recv_from"], "fixture needs a non-empty receive list"
        vop["recv_from"] = vop["recv_from"][:-1]
        findings = check_graph(graph)
        assert "STA005" in rules_of(findings)
        assert any("does not list" in f.message for f in findings)

    def test_sta005_member_skips_collective(self):
        graph = elaborate(fresh_plan(96, 4, 8), method="col", spawn="merge")
        graph.ops["r3"] = [op for op in graph.ops["r3"]
                           if op["op"] != "alltoall"]
        findings = check_graph(graph)
        assert "STA005" in rules_of(findings)
        assert any("every member must enter" in f.message for f in findings)


class TestProgress:
    def test_sta006_head_to_head_blocking_receives(self):
        # Classic deadlock: both sides post a blocking recv before their
        # send.  Counts match (STA004-clean) yet no order can retire it.
        graph = CommGraph(
            label="handcrafted",
            nodes=[RankNode("a"), RankNode("b")],
            ops={
                "a": [{"op": "recv", "peer_node": "b", "tag": 5},
                      {"op": "send", "peer_node": "b", "tag": 5}],
                "b": [{"op": "recv", "peer_node": "a", "tag": 5},
                      {"op": "send", "peer_node": "a", "tag": 5}],
            },
        )
        findings = check_graph(graph)
        assert rules_of(findings) == ["STA006"]
        assert "static deadlock" in findings[0].message

    def test_ordered_blocking_exchange_is_clean(self):
        # The textbook fix — one side sends first — must verify clean.
        graph = CommGraph(
            label="handcrafted",
            nodes=[RankNode("a"), RankNode("b")],
            ops={
                "a": [{"op": "send", "peer_node": "b", "tag": 5},
                      {"op": "recv", "peer_node": "b", "tag": 5}],
                "b": [{"op": "recv", "peer_node": "a", "tag": 5},
                      {"op": "send", "peer_node": "a", "tag": 5}],
            },
        )
        assert check_graph(graph) == []

    def test_sta006_deferred_post_never_triggered(self):
        # An irecv gated on a tag that is never sent blocks forever, and
        # the peer's blocking send on the gated tag can then never match.
        graph = CommGraph(
            label="handcrafted",
            nodes=[RankNode("a"), RankNode("b")],
            ops={
                "a": [{"op": "irecv", "peer_node": "b", "tag": 88,
                       "after_tag": 77}],
                "b": [{"op": "send", "peer_node": "a", "tag": 88}],
            },
        )
        findings = check_graph(graph)
        assert "STA006" in rules_of(findings)


class TestLocks:
    @staticmethod
    def _lock(peer, order=0, mode="exclusive", concurrent=False):
        return {"op": "lock", "peer_node": peer, "mode": mode,
                "concurrent": concurrent, "order": order}

    @staticmethod
    def _unlock(peer):
        return {"op": "unlock", "peer_node": peer}

    def test_sta007_inverted_exclusive_order(self):
        # a holds x while acquiring y; b holds y while acquiring x.
        graph = CommGraph(
            label="handcrafted",
            nodes=[RankNode(n) for n in ("a", "b", "x", "y")],
            ops={
                "a": [self._lock("x", 0), self._lock("y", 1),
                      self._unlock("y"), self._unlock("x")],
                "b": [self._lock("y", 0), self._lock("x", 1),
                      self._unlock("x"), self._unlock("y")],
                "x": [], "y": [],
            },
        )
        findings = check_graph(graph)
        assert rules_of(findings) == ["STA007"]
        assert "inverted" in findings[0].message

    def test_consistent_exclusive_order_is_clean(self):
        graph = CommGraph(
            label="handcrafted",
            nodes=[RankNode(n) for n in ("a", "b", "x", "y")],
            ops={
                "a": [self._lock("x", 0), self._lock("y", 1),
                      self._unlock("y"), self._unlock("x")],
                "b": [self._lock("x", 0), self._lock("y", 1),
                      self._unlock("y"), self._unlock("x")],
                "x": [], "y": [],
            },
        )
        assert check_graph(graph) == []

    def test_shared_concurrent_locks_are_not_sta007(self):
        # The shipped RMA arm opens *shared* epochs concurrently — that is
        # by construction not an exclusive-order hazard.
        graph = elaborate(fresh_plan(96, 4, 8), method="rma", spawn="merge")
        assert all(op.get("mode") == "shared"
                   for ops in graph.ops.values()
                   for op in ops if op["op"] == "lock")
        assert check_graph(graph) == []

    def test_sta008_leaked_epoch(self):
        # Drop one unlock from a driving source: the epoch never closes.
        graph = elaborate(fresh_plan(96, 4, 8), method="rma", spawn="merge")
        victim = graph.ops["r0"]
        idx = next(i for i, op in enumerate(victim) if op["op"] == "unlock")
        del victim[idx]
        findings = check_graph(graph)
        assert "STA008" in rules_of(findings)
        assert any("still open at finish" in f.message for f in findings)

    def test_sta008_excess_unlock(self):
        graph = elaborate(fresh_plan(96, 4, 8), method="rma", spawn="merge")
        victim = graph.ops["r0"]
        unlock = next(op for op in victim if op["op"] == "unlock")
        victim.append(dict(unlock))
        findings = check_graph(graph)
        assert "STA008" in rules_of(findings)


# ==================================================================== sweep
class TestSweep:
    def test_verify_config_accepts_keys(self):
        assert verify_config("merge-p2p-s", 96, 4, 8) == []

    def test_all_18_configs_clean_default(self):
        findings, n = verify_matrix(rows=(96,), resizes=((4, 8), (8, 4)))
        assert findings == []
        assert n == len(ALL_CONFIGS) * 2

    def test_extended_sweep_clean(self):
        findings, n = verify_matrix(rows=(96,), resizes=((6, 6),),
                                    extended=True)
        assert findings == []
        # 18 configs x 4 option-variants (plain, coalesced/target-driven,
        # batched, and the combination) x 2 plans.
        assert n == len(ALL_CONFIGS) * 8

    def test_matrix_reports_seeded_bug(self):
        # A tampered plan threaded through verify_config must surface.
        plan = fresh_plan(96, 4, 8)
        plan._by_dst[7] = [Transfer(3, 7, 84, 90)]
        findings = verify_config("merge-p2p-s", 96, 4, 8, plan=plan)
        assert findings != []


# ====================================================================== CLI
class TestCli:
    def test_clean_sweep_exit_zero(self, capsys):
        assert main(["--rows", "96", "--resizes", "4:8"]) == 0
        out = capsys.readouterr().out
        assert "clean: no findings" in out
        assert "verified 18 schedule(s)" in out

    def test_json_format(self, capsys):
        assert main(["--rows", "96", "--resizes", "4:8",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["checked"] == 18
        assert doc["findings"] == []

    def test_config_subset(self, capsys):
        assert main(["--rows", "96", "--resizes", "4:8",
                     "--configs", "merge-rma-a,baseline-col-s"]) == 0
        assert "across 2 config(s)" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("STA001", "STA008"):
            assert code in out

    def test_wall_budget_overrun_fails(self, capsys):
        assert main(["--rows", "96", "--resizes", "4:8",
                     "--max-wall", "0"]) == 1
        assert "wall budget exceeded" in capsys.readouterr().err

    def test_harness_verify_plans_forwarder(self, capsys):
        from repro.harness.cli import main as harness_main
        assert harness_main(["verify-plans", "--rows", "96",
                             "--resizes", "4:8"]) == 0
        assert "clean: no findings" in capsys.readouterr().out
