"""Timer-wheel (batch lane) vs tuple-heap (scalar lane) identity tests.

The ``REPRO_BATCH`` batch lane routes homogeneous Timeout traffic through a
per-deadline timer wheel drained in bulk, while generic commands keep the
tuple heap.  Its contract is *bit-for-bit* equivalence with the scalar
lane: identical wakeup order, identical clock trajectory, identical
process outcomes — under cancels, resumes, kills, zero-delay reschedules,
``until`` cutoffs and strict limits.  Every test here runs one scenario
under both lanes and compares full traces.
"""

from __future__ import annotations

import random

import pytest

from repro.simulate import (
    DeadlockError,
    Passivate,
    SimTimeLimitExceeded,
    SimulationError,
    Simulator,
    Timeout,
    WaitEvent,
)


def _lane_sim(monkeypatch, batch: bool) -> Simulator:
    monkeypatch.setenv("REPRO_BATCH", "1" if batch else "0")
    sim = Simulator()
    assert sim._batch is batch
    return sim


def run_both_lanes(monkeypatch, scenario, **run_kwargs):
    """Run ``scenario(sim, trace)`` under each lane; assert identical
    traces, end times and process outcomes; return the shared trace."""
    outcomes = []
    for batch in (True, False):
        sim = _lane_sim(monkeypatch, batch)
        trace: list = []
        procs = scenario(sim, trace) or []
        end = sim.run(**run_kwargs)
        outcomes.append((
            trace, end, sim.now,
            [(p.name, p.state, p.result) for p in procs],
        ))
    assert outcomes[0] == outcomes[1]
    return outcomes[0]


# ------------------------------------------------------------ ordered wakeups
def test_same_deadline_wakes_in_spawn_order(monkeypatch):
    def scenario(sim, trace):
        def proc(name):
            yield Timeout(1.0)
            trace.append((sim.now, name))
        return [sim.spawn(proc(f"p{i}"), name=f"p{i}") for i in range(6)]

    trace, end, *_ = run_both_lanes(monkeypatch, scenario)
    assert end == 1.0
    assert [name for _t, name in trace] == [f"p{i}" for i in range(6)]


def test_heap_and_wheel_merge_by_seq_at_equal_time(monkeypatch):
    # Scheduled callbacks (heap) and timeouts (wheel) at the same instant
    # must fire in registration-sequence order in both lanes.  The
    # callbacks draw their sequence numbers at setup; the timeouts draw
    # theirs when the processes first run (inside ``run()``), so the
    # callbacks come first — and the lanes must agree exactly.
    def scenario(sim, trace):
        def proc(name, delay):
            yield Timeout(delay)
            trace.append((sim.now, name))
        a = sim.spawn(proc("a", 2.0), name="a")
        sim.schedule(2.0, lambda: trace.append((sim.now, "cb1")))
        b = sim.spawn(proc("b", 2.0), name="b")
        sim.schedule(2.0, lambda: trace.append((sim.now, "cb2")))
        return [a, b]

    trace, *_ = run_both_lanes(monkeypatch, scenario)
    assert [name for _t, name in trace] == ["cb1", "cb2", "a", "b"]


def test_zero_delay_timeout_reenters_current_bucket(monkeypatch):
    # Timeout(0) from inside a draining bucket lands back in the *same*
    # bucket past the drain snapshot — it must still fire this instant,
    # after every already-queued wakeup.
    def scenario(sim, trace):
        def spinner():
            for i in range(3):
                trace.append((sim.now, "spin", i))
                yield Timeout(0.0)
        def peer():
            yield Timeout(0.0)
            trace.append((sim.now, "peer", 0))
        return [sim.spawn(spinner(), name="s"), sim.spawn(peer(), name="p")]

    trace, end, *_ = run_both_lanes(monkeypatch, scenario)
    assert end == 0.0
    # The spinner's first reschedule draws its sequence before the peer's
    # initial timeout fires, so it wakes again ahead of the peer — and the
    # lanes must agree on that exact interleaving.
    assert trace == [
        (0.0, "spin", 0), (0.0, "spin", 1), (0.0, "peer", 0),
        (0.0, "spin", 2),
    ]


# ----------------------------------------------------------- cancels & kills
def test_resume_cancels_pending_timeout(monkeypatch):
    # A cross-process resume invalidates the wheel entry; the stale slot
    # must be skipped without waking the process a second time.
    def scenario(sim, trace):
        def sleeper():
            got = yield Timeout(10.0, value="late")
            trace.append((sim.now, "woke", got))
        target = sim.spawn(sleeper(), name="t")

        def waker():
            yield Timeout(1.0)
            sim.resume(target, "early")
        return [target, sim.spawn(waker(), name="w")]

    trace, end, *_ = run_both_lanes(monkeypatch, scenario)
    assert trace == [(1.0, "woke", "early")]
    assert end == 1.0  # the stale 10.0 entry never advances the clock


def test_kill_discards_wheel_entry(monkeypatch):
    def scenario(sim, trace):
        def sleeper():
            yield Timeout(5.0)
            trace.append((sim.now, "must-not-run"))
        victim = sim.spawn(sleeper(), name="victim")

        def killer():
            yield Timeout(1.0)
            sim.kill_now(victim)
            trace.append((sim.now, "killed"))
        return [victim, sim.spawn(killer(), name="killer")]

    trace, end, *_ = run_both_lanes(monkeypatch, scenario)
    assert trace == [(1.0, "killed")]
    assert end == 1.0


def test_all_stale_bucket_does_not_advance_clock(monkeypatch):
    # Every entry of a future bucket is cancelled before it fires: neither
    # lane may move ``now`` to that bucket's deadline.
    def scenario(sim, trace):
        sleepers = []

        def sleeper():
            yield Timeout(7.0)
            trace.append((sim.now, "ghost"))
        for i in range(3):
            sleepers.append(sim.spawn(sleeper(), name=f"s{i}"))

        def reaper():
            yield Timeout(0.5)
            for p in sleepers:
                sim.resume(p, None)
        return sleepers + [sim.spawn(reaper(), name="r")]

    def scenario_wrapped(sim, trace):
        procs = scenario(sim, trace)
        return procs

    trace, end, now, states = run_both_lanes(monkeypatch, scenario_wrapped)
    assert end == 0.5
    assert now == 0.5


# ------------------------------------------------------------- until limits
def test_lenient_until_stops_mid_bucket_sequence(monkeypatch):
    def scenario(sim, trace):
        def proc(name, delay):
            yield Timeout(delay)
            trace.append((sim.now, name))
        return [sim.spawn(proc(f"p{d}", d), name=f"p{d}")
                for d in (1.0, 2.0, 3.0)]

    trace, end, now, _ = run_both_lanes(monkeypatch, scenario, until=2.0)
    assert end == 2.0 and now == 2.0
    assert [name for _t, name in trace] == ["p1.0", "p2.0"]


def test_until_excludes_later_entries_of_same_run(monkeypatch):
    # until falls between two buckets: the earlier fires, the later stays
    # queued, and a follow-up run drains it identically in both lanes.
    for batch in (True, False):
        sim = _lane_sim(monkeypatch, batch)
        fired = []

        def proc(name, delay):
            yield Timeout(delay)
            fired.append((sim.now, name))
        sim.spawn(proc("early", 1.0), name="early")
        sim.spawn(proc("late", 4.0), name="late")
        assert sim.run(until=2.5) == 2.5
        assert fired == [(1.0, "early")]
        assert sim.run() == 4.0
        assert fired == [(1.0, "early"), (4.0, "late")]


def test_strict_until_raises_identically(monkeypatch):
    errs = []
    for batch in (True, False):
        sim = _lane_sim(monkeypatch, batch)

        def sleeper():
            yield Timeout(10.0)
        sim.spawn(sleeper(), name="slow")
        with pytest.raises(SimTimeLimitExceeded) as exc_info:
            sim.run(until=1.0, strict_until=True)
        errs.append((exc_info.value.until, exc_info.value.pending_events,
                     tuple(exc_info.value.blocked), sim.now))
    assert errs[0] == errs[1]
    assert errs[0][0] == 1.0 and errs[0][1] >= 1


def test_strict_until_ignores_cancelled_entries(monkeypatch):
    # The only queued work past the limit is a cancelled wheel entry — not
    # a live event, so strict mode must *not* raise in either lane.
    for batch in (True, False):
        sim = _lane_sim(monkeypatch, batch)

        def sleeper():
            got = yield Timeout(10.0)
            return got

        def waker(target):
            yield Timeout(0.5)
            sim.resume(target, "early")
        t = sim.spawn(sleeper(), name="t")
        sim.spawn(waker(t), name="w")
        assert sim.run(until=1.0, strict_until=True) == 0.5
        assert t.result == "early"


# ------------------------------------------------------------------ failures
def test_deadlock_detection_parity(monkeypatch):
    msgs = []
    for batch in (True, False):
        sim = _lane_sim(monkeypatch, batch)

        def stuck():
            yield Passivate()

        def ticker():
            yield Timeout(1.0)
        sim.spawn(stuck(), name="stuck")
        sim.spawn(ticker(), name="ticker")
        with pytest.raises(DeadlockError) as exc_info:
            sim.run()
        msgs.append((str(exc_info.value), sim.now))
    assert msgs[0] == msgs[1]


def test_process_exception_parity(monkeypatch):
    results = []
    for batch in (True, False):
        sim = _lane_sim(monkeypatch, batch)

        def boomer():
            yield Timeout(1.0)
            raise RuntimeError("boom")

        def bystander():
            yield Timeout(2.0)
            return "ok"
        b = sim.spawn(boomer(), name="boom")
        by = sim.spawn(bystander(), name="by")
        with pytest.raises(SimulationError, match="boom") as exc_info:
            sim.run()
        assert isinstance(exc_info.value.__cause__, RuntimeError)
        results.append((str(exc_info.value), sim.now, b.state, by.state))
    assert results[0] == results[1]


# ---------------------------------------------------------------- event mix
def test_wait_event_and_timeout_mix(monkeypatch):
    def scenario(sim, trace):
        ev = sim.event("gate")

        def waiter():
            got = yield WaitEvent(ev)
            trace.append((sim.now, "gate", got))
            yield Timeout(0.25)
            trace.append((sim.now, "after"))

        def trigger():
            yield Timeout(1.5)
            ev.trigger("open")
        return [sim.spawn(waiter(), name="w"),
                sim.spawn(trigger(), name="t")]

    trace, end, *_ = run_both_lanes(monkeypatch, scenario)
    assert trace == [(1.5, "gate", "open"), (1.75, "after")]
    assert end == 1.75


# --------------------------------------------------------------------- fuzz
@pytest.mark.parametrize("seed", range(25))
def test_randomized_trace_identity(monkeypatch, seed):
    """Randomized mixed workloads: N processes looping over random
    timeouts (including zero delays), cross-process resume-cancels and
    scheduled callbacks, bounded by a random ``until`` — full trace,
    end-time and final-state identity between the lanes."""

    def build(sim, trace):
        rng = random.Random(seed)
        procs = []
        n = 6

        def worker(idx, plan):
            for step, (delay, cancel_peer) in enumerate(plan):
                got = yield Timeout(delay, value=(idx, step))
                trace.append((sim.now, idx, step, got))
                if cancel_peer is not None and cancel_peer < len(procs):
                    peer = procs[cancel_peer]
                    if peer.alive and peer.blocked_on == "timeout":
                        sim.resume(peer, ("cancelled-by", idx))
            return idx

        plans = []
        for idx in range(n):
            plan = []
            for _step in range(rng.randrange(1, 6)):
                delay = rng.choice([0.0, 0.001, 0.001, 0.002, 0.005, 0.01])
                cancel = rng.randrange(n) if rng.random() < 0.3 else None
                plan.append((delay, cancel))
            plans.append(plan)
        for idx in range(n):
            procs.append(sim.spawn(worker(idx, plans[idx]), name=f"w{idx}"))
        for _ in range(rng.randrange(0, 4)):
            at = rng.choice([0.0, 0.001, 0.004, 0.009])
            sim.schedule(at, lambda at=at: trace.append((sim.now, "cb", at)))
        return procs

    rng = random.Random(10_000 + seed)
    until = rng.choice([None, 0.004, 0.01, 1.0])
    kwargs = {} if until is None else {"until": until}
    run_both_lanes(monkeypatch, build, **kwargs)
