"""Unit tests for the discrete-event kernel: scheduling, processes, run()."""

import pytest

from repro.simulate import (
    DeadlockError,
    Passivate,
    ProcessKilled,
    SimulationError,
    Simulator,
    Timeout,
    WaitEvent,
)


def test_empty_run_returns_zero_time():
    sim = Simulator()
    assert sim.run() == 0.0
    assert sim.now == 0.0


def test_single_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield Timeout(2.5)
        return "done"

    p = sim.spawn(proc(), name="p")
    sim.run()
    assert sim.now == 2.5
    assert p.result == "done"
    assert p.done_event.triggered


def test_timeout_yields_its_value():
    sim = Simulator()
    seen = []

    def proc():
        got = yield Timeout(1.0, value="payload")
        seen.append(got)

    sim.spawn(proc())
    sim.run()
    assert seen == ["payload"]


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_sequential_timeouts_accumulate():
    sim = Simulator()
    times = []

    def proc():
        for _ in range(4):
            yield Timeout(0.5)
            times.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert times == [0.5, 1.0, 1.5, 2.0]


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    trace = []

    def proc(name, dt):
        for _ in range(3):
            yield Timeout(dt)
            trace.append((name, sim.now))

    sim.spawn(proc("a", 1.0))
    sim.spawn(proc("b", 1.5))
    sim.run()
    # At t=3.0 both are due; b's wakeup was scheduled earlier (at t=1.5)
    # than a's (at t=2.0), so FIFO tie-breaking runs b first.
    assert trace == [
        ("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0), ("a", 3.0),
        ("b", 4.5),
    ]


def test_same_time_events_fire_in_spawn_order():
    sim = Simulator()
    trace = []

    def proc(name):
        yield Timeout(1.0)
        trace.append(name)

    for name in ["x", "y", "z"]:
        sim.spawn(proc(name))
    sim.run()
    assert trace == ["x", "y", "z"]


def test_run_until_pauses_before_future_events():
    sim = Simulator()

    def proc():
        yield Timeout(10.0)

    sim.spawn(proc())
    sim.run(until=3.0)
    assert sim.now == 3.0
    sim.run()
    assert sim.now == 10.0


def test_process_exception_propagates_from_run():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise ValueError("boom")

    sim.spawn(bad(), name="bad")
    with pytest.raises(SimulationError) as exc:
        sim.run()
    assert isinstance(exc.value.__cause__, ValueError)


def test_invalid_yield_is_reported():
    sim = Simulator()

    def bad():
        yield 42  # not a Command

    sim.spawn(bad(), name="bad")
    with pytest.raises(SimulationError):
        sim.run()


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_deadlock_detection_lists_blocked_process():
    sim = Simulator()

    def stuck():
        yield WaitEvent(sim.event("never"))

    sim.spawn(stuck(), name="stuck-proc")
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    assert "stuck-proc" in str(exc.value)


def test_passivate_then_external_resume():
    sim = Simulator()
    out = []

    def sleeper():
        got = yield Passivate("waiting for poke")
        out.append(got)

    p = sim.spawn(sleeper())

    def poker():
        yield Timeout(5.0)
        sim.resume(p, "poked")

    sim.spawn(poker())
    sim.run()
    assert out == ["poked"]
    assert sim.now == 5.0


def test_kill_injects_processkilled():
    sim = Simulator()
    cleaned = []

    def victim():
        try:
            yield Timeout(100.0)
        except ProcessKilled:
            cleaned.append(True)
            raise

    v = sim.spawn(victim(), name="victim")

    def killer():
        yield Timeout(1.0)
        v.kill()

    sim.spawn(killer())
    sim.run()
    assert cleaned == [True]
    assert not v.alive
    assert sim.now == pytest.approx(1.0)


def test_killed_process_done_event_triggers():
    sim = Simulator()

    def victim():
        yield Timeout(100.0)

    v = sim.spawn(victim(), name="victim")
    joined = []

    def joiner():
        yield WaitEvent(v.done_event)
        joined.append(sim.now)

    sim.spawn(joiner())

    def killer():
        yield Timeout(2.0)
        v.kill()

    sim.spawn(killer())
    sim.run()
    assert joined == [2.0]


def test_subroutine_via_yield_from():
    sim = Simulator()

    def sub(dt):
        yield Timeout(dt)
        return dt * 2

    def main():
        a = yield from sub(1.0)
        b = yield from sub(2.0)
        return a + b

    p = sim.spawn(main())
    sim.run()
    assert p.result == 6.0
    assert sim.now == 3.0


def test_process_return_value_in_done_event():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)
        return {"answer": 42}

    p = sim.spawn(proc())
    got = []

    def watcher():
        value = yield WaitEvent(p.done_event)
        got.append(value)

    sim.spawn(watcher())
    sim.run()
    assert got == [{"answer": 42}]


def test_schedule_at_past_rejected():
    sim = Simulator()

    def proc():
        yield Timeout(5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    sim.spawn(proc())
    sim.run()


def test_cancelled_heap_item_skipped():
    sim = Simulator()
    fired = []
    item = sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    item.cancelled = True
    sim.run()
    assert fired == ["b"]


def test_resume_on_dead_process_is_noop():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)

    p = sim.spawn(proc())
    sim.run()
    sim.resume(p, "late")  # must not raise or revive
    sim.run()
    assert not p.alive


def test_wait_all_helper():
    sim = Simulator()

    def worker(dt, val):
        yield Timeout(dt)
        return val

    ps = [sim.spawn(worker(d, d * 10)) for d in (3.0, 1.0, 2.0)]

    def main():
        results = yield from sim.wait_all(ps)
        return results

    m = sim.spawn(main())
    sim.run()
    assert m.result == [30.0, 10.0, 20.0]
    assert sim.now == 3.0


# ------------------------------------------------------------- batch lane
def test_schedule_batch_fires_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule_batch(
        [(t, (lambda t=t: fired.append(t))) for t in (3.0, 1.0, 2.0)]
    )
    sim.run()
    assert fired == [1.0, 2.0, 3.0]
    assert sim.now == 3.0


def test_schedule_batch_same_time_keeps_submission_order():
    sim = Simulator()
    fired = []
    sim.schedule_batch(
        [(1.0, (lambda i=i: fired.append(i))) for i in range(5)]
    )
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_schedule_batch_interleaves_with_individual_pushes():
    sim = Simulator()
    fired = []
    sim.schedule(1.5, lambda: fired.append("solo"))
    sim.schedule_batch([
        (1.0, lambda: fired.append("b1")),
        (2.0, lambda: fired.append("b2")),
    ])
    sim.run()
    assert fired == ["b1", "solo", "b2"]


def test_schedule_batch_large_batch_heapifies():
    # A batch much larger than the resident heap goes down the heapify
    # path; order must be identical to one-by-one scheduling.
    sim = Simulator()
    fired = []
    times = [float((i * 37) % 100) + 1.0 for i in range(200)]
    sim.schedule_batch([(t, (lambda t=t: fired.append(t))) for t in times])
    sim.run()
    assert fired == sorted(times)


def test_schedule_batch_small_batch_pushes_into_big_heap():
    sim = Simulator()
    fired = []
    for i in range(100):  # resident heap >> batch: the push path
        sim.schedule(10.0 + i, (lambda i=i: fired.append(f"h{i}")))
    sim.schedule_batch([(1.0, lambda: fired.append("early"))])
    sim.run()
    assert fired[0] == "early"
    assert len(fired) == 101


def test_schedule_batch_cancellable_handles():
    sim = Simulator()
    fired = []
    handles = sim.schedule_batch([
        (1.0, lambda: fired.append("a")),
        (2.0, lambda: fired.append("b")),
    ])
    handles[0].cancelled = True
    sim.run()
    assert fired == ["b"]


def test_schedule_batch_rejects_past_times():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.now == 1.0
    with pytest.raises(ValueError):
        sim.schedule_batch([(0.5, lambda: None)])
