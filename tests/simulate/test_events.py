"""Unit tests for SimEvent and the event-combinator commands."""

import pytest

from repro.simulate import (
    AllOf,
    AnyOf,
    EventState,
    Now,
    Simulator,
    Timeout,
    WaitEvent,
)


def test_event_lifecycle():
    sim = Simulator()
    ev = sim.event("e")
    assert ev.pending and not ev.triggered and not ev.failed
    ev.trigger(7)
    assert ev.triggered
    assert ev.value == 7
    assert ev.state is EventState.TRIGGERED


def test_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.trigger()
    with pytest.raises(RuntimeError):
        ev.trigger()
    with pytest.raises(RuntimeError):
        ev.fail(ValueError("x"))


def test_value_of_pending_event_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_failed_event_value_reraises():
    sim = Simulator()
    ev = sim.event()
    ev.fail(KeyError("missing"))
    with pytest.raises(KeyError):
        _ = ev.value


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_wait_event_receives_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        got.append((yield WaitEvent(ev)))

    sim.spawn(waiter())

    def firer():
        yield Timeout(2.0)
        ev.trigger("hello")

    sim.spawn(firer())
    sim.run()
    assert got == ["hello"]
    assert sim.now == 2.0


def test_wait_on_already_triggered_event_is_immediate():
    sim = Simulator()
    ev = sim.event()
    ev.trigger("pre")
    got = []

    def waiter():
        got.append((yield WaitEvent(ev)))
        got.append(sim.now)

    sim.spawn(waiter())
    sim.run()
    assert got == ["pre", 0.0]


def test_wait_on_failed_event_raises_in_process():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield WaitEvent(ev)
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())

    def failer():
        yield Timeout(1.0)
        ev.fail(ValueError("deliberate"))

    sim.spawn(failer())
    sim.run()
    assert caught == ["deliberate"]


def test_wait_event_type_check():
    with pytest.raises(TypeError):
        WaitEvent("not an event")  # type: ignore[arg-type]


def test_anyof_returns_first_index_and_value():
    sim = Simulator()
    evs = [sim.event(f"e{i}") for i in range(3)]
    got = []

    def waiter():
        got.append((yield AnyOf(evs)))

    sim.spawn(waiter())

    def firer():
        yield Timeout(1.0)
        evs[2].trigger("two")
        evs[0].trigger("zero")  # later same-time trigger must be ignored

    sim.spawn(firer())
    sim.run()
    assert got == [(2, "two")]


def test_anyof_pretriggered_prefers_lowest_index():
    sim = Simulator()
    evs = [sim.event(f"e{i}") for i in range(3)]
    evs[1].trigger("one")
    evs[2].trigger("two")
    got = []

    def waiter():
        got.append((yield AnyOf(evs)))

    sim.spawn(waiter())
    sim.run()
    assert got == [(1, "one")]


def test_anyof_empty_rejected():
    with pytest.raises(ValueError):
        AnyOf([])


def test_allof_collects_all_values_in_order():
    sim = Simulator()
    evs = [sim.event(f"e{i}") for i in range(3)]
    got = []

    def waiter():
        got.append((yield AllOf(evs)))

    sim.spawn(waiter())

    def firer():
        yield Timeout(1.0)
        evs[1].trigger("b")
        yield Timeout(1.0)
        evs[0].trigger("a")
        yield Timeout(1.0)
        evs[2].trigger("c")

    sim.spawn(firer())
    sim.run()
    assert got == [["a", "b", "c"]]
    assert sim.now == 3.0


def test_allof_with_empty_list_resumes_immediately():
    sim = Simulator()
    got = []

    def waiter():
        got.append((yield AllOf([])))

    sim.spawn(waiter())
    sim.run()
    assert got == [[]]


def test_allof_with_pretriggered_events():
    sim = Simulator()
    evs = [sim.event(), sim.event()]
    evs[0].trigger(1)
    evs[1].trigger(2)
    got = []

    def waiter():
        got.append((yield AllOf(evs)))

    sim.spawn(waiter())
    sim.run()
    assert got == [[1, 2]]


def test_allof_failure_propagates():
    sim = Simulator()
    evs = [sim.event(), sim.event()]
    caught = []

    def waiter():
        try:
            yield AllOf(evs)
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())

    def failer():
        yield Timeout(1.0)
        evs[0].fail(RuntimeError("bad"))

    sim.spawn(failer())
    sim.run()
    assert caught == ["bad"]


def test_now_command_reads_clock_without_advancing():
    sim = Simulator()
    got = []

    def proc():
        yield Timeout(4.0)
        t = yield Now()
        got.append(t)
        yield Timeout(1.0)
        got.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert got == [4.0, 5.0]


def test_callback_on_fired_event_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.trigger("v")
    seen = []
    ev.add_callback(lambda e: seen.append(e._value))
    assert seen == ["v"]


def test_discard_callback():
    sim = Simulator()
    ev = sim.event()
    seen = []
    cb = lambda e: seen.append(1)  # noqa: E731
    ev.add_callback(cb)
    ev.discard_callback(cb)
    ev.trigger()
    assert seen == []


def test_allof_all_settled_with_failure_raises_not_none():
    """Regression: when *every* event already settled and one failed, AllOf
    must raise the stored exception instead of resuming with the failed
    events' ``None`` values (the sendrecv-after-peer-death blind spot)."""
    sim = Simulator()
    evs = [sim.event(), sim.event()]
    evs[0].fail(RuntimeError("first"))
    evs[1].fail(RuntimeError("second"))
    caught = []

    def waiter():
        try:
            yield AllOf(evs)
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    sim.run()
    # Deterministic: the *first* failed event by list order surfaces.
    assert caught == ["first"]


def test_allof_settled_mix_of_success_and_failure_raises():
    sim = Simulator()
    evs = [sim.event(), sim.event()]
    evs[0].trigger("ok")
    evs[1].fail(RuntimeError("boom"))
    caught = []

    def waiter():
        try:
            yield AllOf(evs)
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    sim.run()
    assert caught == ["boom"]


def test_anyof_prefers_lowest_index_among_settled():
    sim = Simulator()
    evs = [sim.event(), sim.event(), sim.event()]
    evs[2].trigger("late-index")
    evs[1].trigger("low-index")
    got = []

    def waiter():
        got.append((yield AnyOf(evs)))

    sim.spawn(waiter())
    sim.run()
    assert got == [(1, "low-index")]


def test_anyof_already_failed_event_raises():
    sim = Simulator()
    evs = [sim.event(), sim.event()]
    evs[0].fail(RuntimeError("gone"))
    caught = []

    def waiter():
        try:
            yield AnyOf(evs)
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    sim.run()
    assert caught == ["gone"]
