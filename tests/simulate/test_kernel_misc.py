"""Kernel odds and ends: run(until), idle hooks, misc guards."""

import pytest

from repro.simulate import Simulator, Timeout, WaitEvent


def test_run_until_can_resume_repeatedly():
    sim = Simulator()
    ticks = []

    def clock():
        for _ in range(10):
            yield Timeout(1.0)
            ticks.append(sim.now)

    sim.spawn(clock())
    sim.run(until=2.5)
    assert ticks == [1.0, 2.0]
    sim.run(until=4.0)
    assert ticks == [1.0, 2.0, 3.0, 4.0]
    sim.run()
    assert len(ticks) == 10


def test_idle_hook_can_inject_more_work():
    sim = Simulator()
    fired = []
    state = {"refills": 0}

    def hook():
        if state["refills"] < 3:
            state["refills"] += 1
            sim.schedule(1.0, lambda: fired.append(sim.now))
            return True
        return False

    sim.idle_hooks.append(hook)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_negative_schedule_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_event_names_are_unique_by_default():
    sim = Simulator()
    names = {sim.event().name for _ in range(100)}
    assert len(names) == 100


def test_live_processes_listing():
    sim = Simulator()

    def sleeper():
        yield Timeout(5.0)

    p1 = sim.spawn(sleeper(), name="s1")
    p2 = sim.spawn(sleeper(), name="s2")
    sim.run(until=1.0)
    assert {p.name for p in sim.live_processes} == {"s1", "s2"}
    sim.run()
    assert sim.live_processes == []


def test_failure_includes_other_failures_note():
    from repro.simulate import SimulationError

    sim = Simulator()

    def bad(name):
        yield Timeout(1.0)
        raise RuntimeError(name)

    sim.spawn(bad("first"), name="first")
    sim.spawn(bad("second"), name="second")
    with pytest.raises(SimulationError):
        sim.run()
