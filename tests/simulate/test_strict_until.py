"""Regression tests for the ``until`` contract of ``Simulator.run``.

Two documented-but-previously-broken behaviours:

* ``strict_until=True`` must raise :class:`SimTimeLimitExceeded` when the
  limit elapses with events still queued or processes blocked (the lenient
  default keeps returning ``until``);
* a run stopping at ``until`` whose remaining heap holds only *cancelled*
  items must still run deadlock detection — previously it silently returned
  ``until``, masking a hang.
"""

import pytest

from repro.simulate import (
    DeadlockError,
    Passivate,
    SimTimeLimitExceeded,
    Simulator,
    Timeout,
    WaitEvent,
)


def _sleeper(duration):
    yield Timeout(duration)
    return "slept"


# --------------------------------------------------------------- lenient mode
def test_lenient_until_returns_limit_with_work_left():
    sim = Simulator()
    p = sim.spawn(_sleeper(10.0), name="slow")
    assert sim.run(until=1.0) == 1.0
    assert sim.now == 1.0
    assert p.alive  # still sleeping; work remains queued
    # a later unbounded run finishes the job
    assert sim.run() == 10.0
    assert p.result == "slept"


def test_lenient_until_past_all_events_returns_final_time():
    sim = Simulator()
    sim.spawn(_sleeper(2.0), name="quick")
    assert sim.run(until=5.0) == 2.0


# ---------------------------------------------------------------- strict mode
def test_strict_until_raises_with_events_queued():
    sim = Simulator()
    sim.spawn(_sleeper(10.0), name="slow")
    with pytest.raises(SimTimeLimitExceeded) as exc_info:
        sim.run(until=1.0, strict_until=True)
    err = exc_info.value
    assert err.until == 1.0
    assert err.pending_events >= 1
    assert any("slow" in entry for entry in err.blocked)
    assert sim.now == 1.0


def test_strict_until_passes_when_run_completes_in_time():
    sim = Simulator()
    p = sim.spawn(_sleeper(2.0), name="quick")
    assert sim.run(until=5.0, strict_until=True) == 2.0
    assert p.result == "slept"


def test_strict_until_requires_an_until():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.run(strict_until=True)


def test_strict_until_reports_blocked_processes():
    sim = Simulator()

    def stuck():
        yield Passivate()

    def ticker():
        yield Timeout(10.0)

    sim.spawn(stuck(), name="stuck-proc")
    sim.spawn(ticker(), name="ticker")
    with pytest.raises(SimTimeLimitExceeded) as exc_info:
        sim.run(until=1.0, strict_until=True)
    assert any("stuck-proc" in entry for entry in exc_info.value.blocked)


# ------------------------------------------- cancelled-heap deadlock detection
def test_until_with_only_cancelled_items_still_detects_deadlock():
    """A blocked process plus a heap of stale wakeups must not return
    ``until`` as if the run were healthy."""
    sim = Simulator()
    ev = sim.event("never")

    def waiter():
        # Block on an event nobody triggers; the pending command leaves a
        # stale (cancelled) wakeup behind when combined with a timeout race.
        yield WaitEvent(ev)

    sim.spawn(waiter(), name="waiter")
    # Simulate a stale wakeup beyond the limit: schedule then cancel.
    item = sim.schedule(10.0, lambda: None)
    item.cancelled = True
    with pytest.raises(DeadlockError) as exc_info:
        sim.run(until=5.0)
    assert any("waiter" in entry for entry in exc_info.value.blocked)


def test_until_with_cancelled_items_and_no_blockers_is_clean():
    sim = Simulator()
    p = sim.spawn(_sleeper(1.0), name="done-early")
    item = sim.schedule(10.0, lambda: None)
    item.cancelled = True
    assert sim.run(until=5.0) == 1.0
    assert p.result == "slept"


def test_strict_until_ignores_cancelled_items():
    """Cancelled heap entries are not 'events still queued'."""
    sim = Simulator()
    p = sim.spawn(_sleeper(1.0), name="quick")
    item = sim.schedule(10.0, lambda: None)
    item.cancelled = True
    assert sim.run(until=5.0, strict_until=True) == 1.0
    assert p.result == "slept"


# ----------------------------------------------------------------- kill_now
def test_kill_now_is_synchronous():
    sim = Simulator()
    cleaned = []

    def victim():
        try:
            yield Timeout(100.0)
        finally:
            cleaned.append("victim")

    p = sim.spawn(victim(), name="victim")
    sim.run(until=1.0)
    assert p.alive
    sim.kill_now(p, reason="fault injection")
    # cleanup ran before kill_now returned — no event-loop turn needed
    assert cleaned == ["victim"]
    assert not p.alive
    assert p.state == "killed"
    assert sim.run() == 1.0  # nothing left; stale wakeup was cancelled


def test_kill_now_on_dead_process_is_a_noop():
    sim = Simulator()
    p = sim.spawn(_sleeper(0.5), name="p")
    sim.run()
    sim.kill_now(p)  # no raise
    assert p.result == "slept"
