"""Batch messaging: ``isend_batch`` / ``inject_batch`` / ``deliver_eager_batch``.

The bulk-delivery layer of the vectorized batch lane hoists per-message
Python bookkeeping but must stay *semantically identical* to issuing the
scalar calls in order — same payloads, same channel sequence numbers, same
simulated times.  These tests pin that contract on every branch: the
per-message overhead path (all built-in fabrics), the staged
``inject_batch`` path (zero-overhead channels), the equal-size eager fast
lane, the mixed-size / rendezvous fallback, dead-peer failure, and the
endpoint-side FIFO-gate fast path and its fallbacks.
"""

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, FabricSpec, Machine
from repro.simulate import Simulator, Timeout
from repro.smpi import ANY_TAG, CommFailedError, MpiWorld, run_spmd
from repro.smpi.endpoint import Endpoint, Message

# A fabric with no per-message CPU charge and no receiver touch-copy: the
# only configuration where ``isend_batch`` stages the whole run through
# ``MpiWorld.inject_batch`` (all built-in fabrics carry an overhead, so they
# take the per-message path and the batch only saves resolution work).
ZERO_OVERHEAD = FabricSpec(
    name="zero-overhead",
    bandwidth=1.25e9,
    latency=10e-6,
    cpu_overhead=0.0,
    eager_threshold=64 * 1024,
    copy_rate=0.0,
)


def _batch_main(entries):
    def main(mpi):
        if mpi.rank == 0:
            reqs = yield from mpi.isend_batch(entries, dest=1)
            yield from mpi.waitall(reqs)
            return None
        got = []
        for _ in entries:
            got.append((yield from mpi.recv(source=0, tag=ANY_TAG)))
        return got

    return main


def _scalar_main(entries):
    def main(mpi):
        if mpi.rank == 0:
            reqs = []
            for payload, tag, nbytes in entries:
                req = yield from mpi.isend(payload, 1, tag=tag, nbytes=nbytes)
                reqs.append(req)
            yield from mpi.waitall(reqs)
            return None
        got = []
        for _ in entries:
            got.append((yield from mpi.recv(source=0, tag=ANY_TAG)))
        return got

    return main


def _run_both(entries, **kwargs):
    """Run the batched and the scalar variant of the same traffic."""
    batch_res, batch_sim = run_spmd(_batch_main(entries), 2, **kwargs)
    scalar_res, scalar_sim = run_spmd(_scalar_main(entries), 2, **kwargs)
    return (batch_res, batch_sim), (scalar_res, scalar_sim)


def _assert_payload_lists_equal(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        np.testing.assert_array_equal(g, w)


def test_batch_matches_scalar_on_overhead_fabric():
    """Ethernet charges per-message CPU: the batch must yield the same
    Compute charges between injections, so times and payloads agree."""
    entries = [(np.full(64, float(i)), i, None) for i in range(5)]
    (bres, bsim), (sres, ssim) = _run_both(entries)
    _assert_payload_lists_equal(bres[1], sres[1])
    _assert_payload_lists_equal(bres[1], [e[0] for e in entries])
    assert bsim.now == ssim.now


def test_batch_matches_scalar_on_staged_path():
    """Equal-size eager run on a zero-overhead inter-node channel: the
    staged ``inject_batch`` + ``deliver_eager_batch`` fast lane."""
    entries = [(np.full(256, float(i)), i, None) for i in range(4)]
    (bres, bsim), (sres, ssim) = _run_both(
        entries, n_nodes=2, cores_per_node=1, fabric=ZERO_OVERHEAD
    )
    _assert_payload_lists_equal(bres[1], sres[1])
    _assert_payload_lists_equal(bres[1], [e[0] for e in entries])
    assert bsim.now == ssim.now


def test_batch_mixed_sizes_and_rendezvous_fallback():
    """Unequal sizes defeat the equal-flow fast lane, and one payload above
    the eager threshold exercises the rendezvous branch of inject_batch."""
    entries = [
        (np.arange(100.0), 0, None),
        (np.arange(300.0), 1, None),
        (np.arange(20_000.0), 2, None),  # 160 kB > 64 kB threshold -> rndv
        (np.arange(50.0), 3, None),
    ]
    (bres, bsim), (sres, ssim) = _run_both(
        entries, n_nodes=2, cores_per_node=1, fabric=ZERO_OVERHEAD
    )
    _assert_payload_lists_equal(bres[1], sres[1])
    assert bsim.now == ssim.now


def test_batch_explicit_nbytes_matches_priced_payload():
    """``nbytes=None`` prices the payload; passing the same size explicitly
    must change nothing."""
    payloads = [np.arange(128.0) + i for i in range(3)]
    implicit = [(p, i, None) for i, p in enumerate(payloads)]
    explicit = [(p, i, p.nbytes) for i, p in enumerate(payloads)]
    res_i, sim_i = run_spmd(_batch_main(implicit), 2)
    res_e, sim_e = run_spmd(_batch_main(explicit), 2)
    _assert_payload_lists_equal(res_i[1], res_e[1])
    assert sim_i.now == sim_e.now


def test_batch_snapshot_semantics():
    """Payloads are copied at the isend_batch call, like scalar isend."""

    def main(mpi):
        if mpi.rank == 0:
            buf = np.ones(8)
            reqs = yield from mpi.isend_batch([(buf, 0, None)], dest=1)
            buf[:] = -1  # mutate after posting
            yield from mpi.waitall(reqs)
            return None
        return (yield from mpi.recv(source=0))

    results, _ = run_spmd(main, 2)
    np.testing.assert_array_equal(results[1], np.ones(8))


def test_batch_interleaves_with_scalar_sends_in_fifo_order():
    """Channel sequence numbers are shared with scalar isend: a batch
    between two plain sends keeps the non-overtaking delivery order."""

    def main(mpi):
        if mpi.rank == 0:
            r0 = yield from mpi.isend(np.full(4, 0.0), 1, tag=0)
            batch = yield from mpi.isend_batch(
                [(np.full(4, 1.0), 1, None), (np.full(4, 2.0), 2, None)], dest=1
            )
            r3 = yield from mpi.isend(np.full(4, 3.0), 1, tag=3)
            yield from mpi.waitall([r0, *batch, r3])
            return None
        got = []
        for _ in range(4):
            got.append((yield from mpi.recv(source=0, tag=ANY_TAG)))
        return got

    for kwargs in ({}, {"n_nodes": 2, "cores_per_node": 1, "fabric": ZERO_OVERHEAD}):
        results, _ = run_spmd(main, 2, **kwargs)
        _assert_payload_lists_equal(
            results[1], [np.full(4, float(i)) for i in range(4)]
        )


def test_batch_to_dead_rank_fails_every_request():
    """inject_batch's single dead-peer verdict must fail all requests the
    way per-message injection would."""
    sim = Simulator()
    machine = Machine(sim, 2, 1, ZERO_OVERHEAD)
    world = MpiWorld(machine)

    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.compute(2.0)  # outlive the assassin
            entries = [(np.arange(16.0), i, None) for i in range(3)]
            reqs = yield from mpi.isend_batch(entries, dest=1)
            failures = []
            for req in reqs:
                try:
                    yield from mpi.wait(req)
                except CommFailedError as e:
                    failures.append(tuple(e.dead_gids))
            return failures
        yield from mpi.compute(10.0)
        return None

    res = world.launch(main, slots=[0, 1])

    def assassin():
        yield Timeout(1.0)
        res.procs[1].kill("node failure")

    sim.spawn(assassin())
    sim.run()
    assert res.procs[0].result == [(1,), (1,), (1,)]
    assert 1 in world.dead_gids


# --------------------------------------------------------------- endpoint
# Unit-level checks of the FIFO-gate fast path: a fake world is enough
# because unmatched eager dispatch only consults ``aborted_ctxs`` and the
# straggler path only ``dead_gids`` / ``retire_msg``.
class _FakeWorld:
    def __init__(self):
        self.aborted_ctxs = set()
        self.dead_gids = set()
        self.retired = []

    def retire_msg(self, msg):
        self.retired.append(msg)


def _msg(seq, src_gid=5, ctx_id=0):
    return Message(
        seq=seq,
        ctx_id=ctx_id,
        src_gid=src_gid,
        dst_gid=9,
        src_rank=0,
        tag=seq,
        payload=("p", seq),
        nbytes=8,
        send_req=None,
    )


def test_deliver_eager_batch_contiguous_run_fast_path():
    ep = Endpoint(_FakeWorld(), 9, None)
    ep.deliver_eager_batch([_msg(0), _msg(1), _msg(2)])
    assert [m.seq for m in ep.unexpected] == [0, 1, 2]
    assert ep._next_seq[5] == 3


def test_deliver_eager_batch_empty_is_noop():
    ep = Endpoint(_FakeWorld(), 9, None)
    ep.deliver_eager_batch([])
    assert ep.unexpected == [] and ep._next_seq == {}


def test_deliver_eager_batch_gap_at_head_falls_back_and_holds():
    ep = Endpoint(_FakeWorld(), 9, None)
    ep.deliver_eager_batch([_msg(1), _msg(2)])  # seq 0 still in flight
    assert ep.unexpected == []
    assert sorted(ep._reorder[5]) == [1, 2]
    ep.deliver_eager(_msg(0))  # the missing head drains the backlog
    assert [m.seq for m in ep.unexpected] == [0, 1, 2]
    assert ep._next_seq[5] == 3


def test_deliver_eager_batch_drains_previously_held_backlog():
    ep = Endpoint(_FakeWorld(), 9, None)
    ep.deliver_eager(_msg(2))  # out of order: held
    assert ep.unexpected == []
    ep.deliver_eager_batch([_msg(0), _msg(1)])  # contiguous at the gate
    assert [m.seq for m in ep.unexpected] == [0, 1, 2]
    assert ep._next_seq[5] == 3


def test_deliver_eager_batch_mixed_senders_fall_back():
    ep = Endpoint(_FakeWorld(), 9, None)
    ep.deliver_eager_batch([_msg(0, src_gid=5), _msg(0, src_gid=6)])
    assert sorted((m.src_gid, m.seq) for m in ep.unexpected) == [(5, 0), (6, 0)]
    assert ep._next_seq == {5: 1, 6: 1}


def test_deliver_eager_batch_closed_endpoint_retires_stragglers():
    world = _FakeWorld()
    world.dead_gids.add(5)
    ep = Endpoint(world, 9, None)
    ep.closed = True
    ep.deliver_eager_batch([_msg(0), _msg(1)])
    assert len(world.retired) == 2
    assert ep.unexpected == []


def test_deliver_eager_batch_closed_endpoint_rejects_live_traffic():
    ep = Endpoint(_FakeWorld(), 9, None)
    ep.closed = True
    with pytest.raises(RuntimeError, match="after finalize"):
        ep.deliver_eager_batch([_msg(0)])
