"""Per-channel FIFO: envelopes match in injection order even when a later
small message physically drains before an earlier large one (the bug class
that let redistribution sessions cross-match, fixed in Endpoint._arrive)."""

import numpy as np
import pytest

from repro.smpi import ANY_TAG, run_spmd

BIG = np.zeros(6000)  # 48 KB: eager on Ethernet but slow to drain
SMALL = np.ones(4)


def test_big_then_small_same_tag_matches_in_order():
    def main(mpi):
        if mpi.rank == 0:
            r1 = yield from mpi.isend(BIG, dest=1, tag=7)
            r2 = yield from mpi.isend(SMALL, dest=1, tag=7)
            yield from mpi.waitall([r1, r2])
            return None
        first = yield from mpi.recv(source=0, tag=7)
        second = yield from mpi.recv(source=0, tag=7)
        return (first.size, second.size)

    results, _ = run_spmd(main, 2, n_nodes=2, cores_per_node=1)
    assert results[1] == (BIG.size, SMALL.size)


def test_interleaved_tags_still_respect_channel_order():
    """recv(tag=8) posted first must get the tag-8 message even though a
    tag-9 message was injected earlier; but two tag-8 messages keep order."""

    def main(mpi):
        if mpi.rank == 0:
            reqs = []
            reqs.append((yield from mpi.isend(BIG, dest=1, tag=9)))
            reqs.append((yield from mpi.isend(SMALL * 1, dest=1, tag=8)))
            reqs.append((yield from mpi.isend(SMALL * 2, dest=1, tag=8)))
            yield from mpi.waitall(reqs)
            return None
        a = yield from mpi.recv(source=0, tag=8)
        b = yield from mpi.recv(source=0, tag=8)
        c = yield from mpi.recv(source=0, tag=9)
        return (float(a[0]), float(b[0]), c.size)

    results, _ = run_spmd(main, 2, n_nodes=2, cores_per_node=1)
    assert results[1] == (1.0, 2.0, BIG.size)


def test_rendezvous_envelope_ordered_behind_eager():
    """An eager message injected before a rendezvous one must match first
    for a wildcard-tag receiver."""
    huge = np.zeros(200_000)  # rendezvous

    def main(mpi):
        if mpi.rank == 0:
            r1 = yield from mpi.isend(SMALL, dest=1, tag=1)
            r2 = yield from mpi.isend(huge, dest=1, tag=2)
            yield from mpi.waitall([r1, r2])
            return None
        first_req = yield from mpi.irecv(source=0, tag=ANY_TAG)
        yield from mpi.wait(first_req)
        second = yield from mpi.recv(source=0, tag=ANY_TAG)
        return (first_req.status.tag, second.size)

    results, _ = run_spmd(main, 2, n_nodes=2, cores_per_node=1)
    assert results[1] == (1, huge.size)
