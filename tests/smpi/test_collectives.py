"""Collective correctness against numpy references, for varied sizes."""

import numpy as np
import pytest

from repro.smpi import op_max, op_min, op_prod, op_sum, run_spmd

SIZES = [1, 2, 3, 4, 5, 7, 8]


@pytest.mark.parametrize("p", SIZES)
def test_barrier_synchronises(p):
    def main(mpi):
        # Ranks arrive at wildly different times; all must leave together.
        yield from mpi.compute(0.01 * (mpi.rank + 1))
        yield from mpi.barrier()
        return mpi.now

    results, _ = run_spmd(main, p, n_nodes=4, cores_per_node=max(1, (p + 3) // 4))
    latest_arrival = 0.01 * p
    assert all(t >= latest_arrival for t in results)


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_from_any_root(p, root):
    root = p - 1 if root == "last" else 0

    def main(mpi):
        value = {"payload": list(range(10))} if mpi.rank == root else None
        value = yield from mpi.bcast(value, root=root)
        return value

    results, _ = run_spmd(main, p)
    assert all(r == {"payload": list(range(10))} for r in results)


@pytest.mark.parametrize("p", SIZES)
def test_allreduce_sum_scalar(p):
    def main(mpi):
        total = yield from mpi.allreduce(mpi.rank + 1, op_sum)
        return total

    results, _ = run_spmd(main, p)
    assert all(r == p * (p + 1) // 2 for r in results)


@pytest.mark.parametrize("p", SIZES)
def test_allreduce_sum_arrays(p):
    def main(mpi):
        vec = np.full(16, float(mpi.rank))
        out = yield from mpi.allreduce(vec, op_sum)
        return out

    results, _ = run_spmd(main, p)
    expected = np.full(16, float(sum(range(p))))
    for r in results:
        np.testing.assert_allclose(r, expected)


@pytest.mark.parametrize("op,expected", [(op_max, lambda p: p - 1),
                                         (op_min, lambda p: 0),
                                         (op_prod, lambda p: 0)])
def test_allreduce_other_ops(op, expected):
    p = 5

    def main(mpi):
        out = yield from mpi.allreduce(mpi.rank, op)
        return out

    results, _ = run_spmd(main, p)
    assert all(r == expected(p) for r in results)


@pytest.mark.parametrize("p", SIZES)
def test_allgatherv_variable_blocks(p):
    def main(mpi):
        block = np.arange(mpi.rank + 1, dtype=np.float64) + 100 * mpi.rank
        blocks = yield from mpi.allgatherv(block)
        return np.concatenate(blocks)

    results, _ = run_spmd(main, p)
    expected = np.concatenate(
        [np.arange(r + 1, dtype=np.float64) + 100 * r for r in range(p)]
    )
    for r in results:
        np.testing.assert_array_equal(r, expected)


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("algorithm", ["bruck", "direct"])
def test_alltoall_matches_reference(p, algorithm):
    def main(mpi):
        send = [f"{mpi.rank}->{d}" for d in range(p)]
        got = yield from mpi.alltoall(send, algorithm=algorithm)
        return got

    results, _ = run_spmd(main, p)
    for r in range(p):
        assert results[r] == [f"{s}->{r}" for s in range(p)]


def test_alltoall_bruck_and_direct_agree_on_arrays():
    p = 6

    def run(algorithm):
        def main(mpi):
            send = [np.full(3, 10 * mpi.rank + d) for d in range(p)]
            got = yield from mpi.alltoall(send, algorithm=algorithm)
            return [g.tolist() for g in got]

        results, _ = run_spmd(main, p)
        return results

    assert run("bruck") == run("direct")


@pytest.mark.parametrize("p", [2, 3, 5])
def test_alltoallv_pairwise_blocking(p):
    def main(mpi):
        send = {d: np.full(d + 1, float(mpi.rank)) for d in range(p)}
        got = yield from mpi.alltoallv(send, recv_from=list(range(p)))
        return {s: v.tolist() for s, v in got.items()}

    results, _ = run_spmd(main, p)
    for r in range(p):
        assert set(results[r]) == set(range(p))
        for s in range(p):
            assert results[r][s] == [float(s)] * (r + 1)


def test_alltoallv_sparse_pattern():
    """Only some pairs exchange data (block redistribution is sparse)."""
    p = 4

    def main(mpi):
        send = {}
        if mpi.rank < 2:  # only ranks 0,1 send, only to rank 3
            send[3] = np.array([float(mpi.rank)])
        recv_from = [0, 1] if mpi.rank == 3 else []
        got = yield from mpi.alltoallv(send, recv_from=recv_from)
        return {s: v.tolist() for s, v in got.items()}

    results, _ = run_spmd(main, p)
    assert results[3] == {0: [0.0], 1: [1.0]}
    assert results[0] == {} and results[2] == {}


@pytest.mark.parametrize("p", [2, 4, 5])
def test_ialltoallv_nonblocking(p):
    def main(mpi):
        send = {d: np.full(8, float(mpi.rank * p + d)) for d in range(p)}
        req, results = yield from mpi.ialltoallv(send, recv_from=list(range(p)))
        yield from mpi.wait(req)
        return {s: float(v[0]) for s, v in results.items()}

    results, _ = run_spmd(main, p)
    for r in range(p):
        assert results[r] == {s: float(s * p + r) for s in range(p)}


def test_ialltoall_nonblocking():
    p = 4

    def main(mpi):
        send = [100 * mpi.rank + d for d in range(p)]
        req, results = yield from mpi.ialltoall(send)
        yield from mpi.wait(req)
        return results

    results, _ = run_spmd(main, p)
    for r in range(p):
        assert results[r] == [100 * s + r for s in range(p)]


def test_collectives_compose_in_sequence():
    """Back-to-back collectives on one communicator must not cross-match."""
    p = 4

    def main(mpi):
        a = yield from mpi.allreduce(1, op_sum)
        yield from mpi.barrier()
        b = yield from mpi.bcast(a * 10 if mpi.rank == 2 else None, root=2)
        blocks = yield from mpi.allgatherv(np.array([float(mpi.rank)]))
        c = float(np.concatenate(blocks).sum())
        return (a, b, c)

    results, _ = run_spmd(main, p)
    assert all(r == (p, p * 10, sum(range(p))) for r in results)


def test_alltoall_wrong_length_rejected():
    def main(mpi):
        try:
            yield from mpi.alltoall([1, 2, 3])  # p=2, wrong length
        except ValueError:
            return "rejected"
        return "accepted"

    results, _ = run_spmd(main, 2)
    assert results == ["rejected", "rejected"]
