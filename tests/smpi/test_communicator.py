"""Communicator semantics: groups, inter/intra lookups, dup/create ops."""

import pytest

from repro.smpi import Communicator, run_spmd


# ------------------------------------------------------------- pure object
def test_intra_basicum():
    c = Communicator(1, (10, 11, 12))
    assert not c.is_inter
    assert c.size == 3 and c.remote_size == 3
    assert c.rank_of_gid(11) == 1
    assert c.peer_gid(2) == 12
    assert c.peer_rank_of_gid(10) == 0
    assert c.contains_gid(12) and not c.contains_gid(99)


def test_inter_lookups():
    c = Communicator(2, (1, 2), remote_group=(7, 8, 9))
    assert c.is_inter
    assert c.size == 2 and c.remote_size == 3
    assert c.peer_gid(1) == 8  # peers index the remote group
    assert c.peer_rank_of_gid(9) == 2
    with pytest.raises(KeyError):
        c.peer_rank_of_gid(1)  # local gid is not a peer on an inter-comm


def test_group_validation():
    with pytest.raises(ValueError):
        Communicator(1, (1, 1))
    with pytest.raises(ValueError):
        Communicator(1, ())
    with pytest.raises(ValueError):
        Communicator(1, (1, 2), remote_group=(2, 3))  # overlap
    with pytest.raises(ValueError):
        Communicator(1, (1,), remote_group=())


def test_peer_rank_bounds():
    c = Communicator(1, (5, 6))
    with pytest.raises(IndexError):
        c.peer_gid(2)
    with pytest.raises(KeyError):
        c.rank_of_gid(99)


# ----------------------------------------------------------------- live ops
def test_comm_dup_gives_fresh_context_same_group():
    def main(mpi):
        dup = yield from mpi.comm_dup()
        assert dup.ctx_id != mpi.comm_world.ctx_id
        assert dup.group == mpi.comm_world.group
        # Traffic on the duplicate must not cross-match the original.
        if mpi.rank == 0:
            yield from mpi.send("on-dup", dest=1, tag=3, comm=dup)
            yield from mpi.send("on-world", dest=1, tag=3)
            return None
        world_msg = yield from mpi.recv(source=0, tag=3)
        dup_msg = yield from mpi.recv(source=0, tag=3, comm=dup)
        return (world_msg, dup_msg)

    results, _ = run_spmd(main, 2)
    assert results[1] == ("on-world", "on-dup")


def test_comm_create_subset():
    def main(mpi):
        sub = yield from mpi.comm_create(mpi.comm_world, [0, 2])
        if mpi.rank in (0, 2):
            assert sub is not None
            total = yield from mpi.allreduce(1, comm=sub)
            return total
        assert sub is None
        return None

    results, _ = run_spmd(main, 3)
    assert results == [2, None, 2]


def test_comm_create_empty_rejected():
    def main(mpi):
        try:
            yield from mpi.comm_create(mpi.comm_world, [])
        except ValueError:
            return "rejected"
        return "accepted"

    results, _ = run_spmd(main, 2)
    assert results == ["rejected", "rejected"]


def test_async_spawn_handle():
    def child(mpi):
        mpi.finalize()
        return "child"
        yield  # pragma: no cover

    def main(mpi):
        handle = yield from mpi.comm_spawn_async(child, slots=[1])
        assert not handle.completed  # spawn takes model time
        iters = 0
        while not handle.completed:
            yield from mpi.compute(0.05)
            iters += 1
        inter = handle.result
        assert inter.is_inter and inter.remote_size == 1
        return iters

    results, sim = run_spmd(main, 1)
    assert results[0] >= 1  # the caller really did keep computing


def test_async_merge_handle():
    def child(mpi):
        merged = yield from mpi.merge_intercomm(mpi.parent, high=True)
        total = yield from mpi.allreduce(1, comm=merged)
        mpi.finalize()
        return total

    def main(mpi):
        inter = yield from mpi.comm_spawn(child, slots=[1])
        handle = yield from mpi.merge_intercomm_async(inter, high=False)
        while not handle.completed:
            yield from mpi.compute(0.001)
        merged = handle.result
        total = yield from mpi.allreduce(1, comm=merged)
        return (merged.size, total)

    results, _ = run_spmd(main, 1)
    assert results[0] == (2, 2)


def test_intercomm_collectives_rejected_where_unsupported():
    def child(mpi):
        mpi.finalize()
        return None
        yield  # pragma: no cover

    def main(mpi):
        inter = yield from mpi.comm_spawn(child, slots=[1])
        try:
            yield from mpi.allreduce(1, comm=inter)
        except ValueError:
            return "rejected"
        return "accepted"

    results, _ = run_spmd(main, 1)
    assert results == ["rejected"]
