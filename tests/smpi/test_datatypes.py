"""Payload sizing and snapshot semantics, incl. property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smpi import Blob, copy_payload, payload_nbytes


def test_nbytes_of_arrays():
    assert payload_nbytes(np.zeros(10)) == 80
    assert payload_nbytes(np.zeros(10, dtype=np.int32)) == 40
    assert payload_nbytes(np.float64(1.5)) == 8


def test_nbytes_of_scalars_and_strings():
    assert payload_nbytes(None) == 0
    assert payload_nbytes(5) == 8
    assert payload_nbytes(2.5) == 8
    assert payload_nbytes(True) == 8
    assert payload_nbytes(b"abcd") == 4
    assert payload_nbytes("héllo") == len("héllo".encode())


def test_nbytes_of_containers():
    assert payload_nbytes([1, 2]) == 16 + 16
    assert payload_nbytes({"a": 1}) == 16 + len(b"a") + 8
    assert payload_nbytes((np.zeros(2),)) == 16 + 16


def test_blob_declares_size():
    assert payload_nbytes(Blob(12345)) == 12345
    with pytest.raises(ValueError):
        Blob(-1)


def test_opaque_objects_get_token_size():
    class Thing:
        pass

    assert payload_nbytes(Thing()) == 64


def test_copy_payload_snapshots_arrays():
    a = np.arange(4.0)
    c = copy_payload(a)
    a[0] = 99
    assert c[0] == 0.0


def test_copy_payload_nested():
    payload = {"x": np.ones(3), "meta": [np.zeros(2), "s"]}
    c = copy_payload(payload)
    payload["x"][0] = 5
    payload["meta"][0][0] = 5
    assert c["x"][0] == 1.0
    assert c["meta"][0][0] == 0.0
    assert c["meta"][1] == "s"


def test_copy_payload_passes_blobs_through():
    b = Blob(10)
    assert copy_payload(b) is b


@given(
    st.recursive(
        st.one_of(
            st.integers(min_value=-1000, max_value=1000),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=20),
            st.binary(max_size=20),
            st.none(),
        ),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=5), children, max_size=4),
            st.tuples(children, children),
        ),
        max_leaves=10,
    )
)
@settings(max_examples=80, deadline=None)
def test_nbytes_nonnegative_and_copy_size_preserving(payload):
    n = payload_nbytes(payload)
    assert n >= 0
    assert payload_nbytes(copy_payload(payload)) == n
