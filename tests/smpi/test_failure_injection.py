"""Failure injection: crashes and kills must fail loudly, not hang silently.

A simulator is only trustworthy if broken runs are *diagnosable*: a dead
rank must surface as a deadlock report naming the stuck peers, and
exceptions in rank code must propagate out of ``sim.run()``.
"""

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.simulate import DeadlockError, ProcessKilled, SimulationError, Simulator, Timeout
from repro.smpi import MpiWorld, run_spmd


def test_rank_exception_propagates_with_context():
    def main(mpi):
        yield from mpi.compute(0.01)
        if mpi.rank == 1:
            raise RuntimeError("rank 1 exploded")
        yield from mpi.barrier()

    with pytest.raises(SimulationError) as err:
        run_spmd(main, 3)
    assert isinstance(err.value.__cause__, RuntimeError)


def test_killed_rank_leaves_peers_diagnosably_stuck():
    sim = Simulator()
    machine = Machine(sim, 2, 2, ETHERNET_10G)
    world = MpiWorld(machine)

    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.recv(source=1, tag=7)  # will never arrive
            return "got it"
        yield from mpi.compute(10.0)
        yield from mpi.send("late", dest=0, tag=7)
        return None

    res = world.launch(main, slots=[0, 1])

    def assassin():
        yield Timeout(1.0)
        res.procs[1].kill("node failure")

    sim.spawn(assassin())
    with pytest.raises(DeadlockError) as err:
        sim.run()
    # The report names the stuck receiver.
    assert "rank0" in str(err.value)


def test_kill_during_redistribution_is_detected():
    """Killing a source mid-transfer leaves targets waiting: deadlock
    report, not silent corruption."""
    from repro.redistribution import Dataset, FieldSpec, RedistributionPlan
    from repro.redistribution.api import RedistMethod, make_session

    n = 50_000
    specs = (FieldSpec("v", "dense", constant=True),)
    plan = RedistributionPlan.block(n, 2, 2)
    sim = Simulator()
    machine = Machine(sim, 4, 1, ETHERNET_10G)
    world = MpiWorld(machine)

    def main(mpi):
        r = mpi.rank
        lo, hi = plan.src_range(r)
        session = make_session(
            RedistMethod.P2P, mpi, mpi.comm_world, plan, names=["v"],
            src_rank=r, dst_rank=1 - r,  # full swap: everyone needs the other
            src_dataset=Dataset.create(
                n, specs, lo, hi, data={"v": np.zeros(hi - lo)}
            ),
            dst_dataset=Dataset.create(n, specs, *plan.dst_range(1 - r)),
        )
        yield from session.run_blocking()
        return "done"

    res = world.launch(main, slots=[0, 2])

    def assassin():
        yield Timeout(1e-4)  # mid-rendezvous
        res.procs[0].kill()

    sim.spawn(assassin())
    with pytest.raises(DeadlockError):
        sim.run()
    assert res.procs[1].result != "done"


def test_killed_thread_reports_cleanup():
    """An aux thread killed mid-wait triggers its done event so the main
    flow can observe the failure rather than spin forever."""

    def main(mpi):
        def stuck_thread(tmpi):
            yield from tmpi.recv(source=0, tag=99)  # never sent

        handle = yield from mpi.spawn_thread(stuck_thread)
        yield from mpi.compute(0.01)
        handle.proc.kill("cancelled")
        yield from mpi.join_thread(handle)
        return handle.finished

    results, _ = run_spmd(main, 1, n_nodes=1, cores_per_node=2)
    assert results == [True]


def test_processkilled_cleanup_runs():
    """Rank code can catch ProcessKilled for cleanup (and must re-raise)."""
    cleaned = []

    sim = Simulator()
    machine = Machine(sim, 1, 2, ETHERNET_10G)
    world = MpiWorld(machine)

    def main(mpi):
        try:
            yield from mpi.compute(100.0)
        except ProcessKilled:
            cleaned.append(mpi.rank)
            raise

    res = world.launch(main, slots=[0])

    def assassin():
        yield Timeout(0.5)
        res.procs[0].kill()

    sim.spawn(assassin())
    sim.run()
    assert cleaned == [0]
