"""Failure injection: crashes and kills must fail loudly, not hang silently.

A simulator is only trustworthy if broken runs are *diagnosable*: since the
failure layer landed, a dead rank surfaces as :class:`CommFailedError` in the
peers blocked on it (ULFM-style) rather than a whole-run deadlock report, and
exceptions in rank code must propagate out of ``sim.run()``.
"""

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.simulate import ProcessKilled, SimulationError, Simulator, Timeout
from repro.smpi import CommFailedError, MpiWorld, run_spmd


def test_rank_exception_propagates_with_context():
    def main(mpi):
        yield from mpi.compute(0.01)
        if mpi.rank == 1:
            raise RuntimeError("rank 1 exploded")
        yield from mpi.barrier()

    with pytest.raises(SimulationError) as err:
        run_spmd(main, 3)
    assert isinstance(err.value.__cause__, RuntimeError)


def test_killed_rank_fails_blocked_peers():
    """A peer blocked on a killed rank gets CommFailedError, not a hang."""
    sim = Simulator()
    machine = Machine(sim, 2, 2, ETHERNET_10G)
    world = MpiWorld(machine)

    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.recv(source=1, tag=7)  # will never arrive
            return "got it"
        yield from mpi.compute(10.0)
        yield from mpi.send("late", dest=0, tag=7)
        return None

    res = world.launch(main, slots=[0, 1])

    def assassin():
        yield Timeout(1.0)
        res.procs[1].kill("node failure")

    sim.spawn(assassin())
    with pytest.raises(SimulationError) as err:
        sim.run()
    # The receiver was woken with a CommFailedError naming the dead rank.
    assert isinstance(err.value.__cause__, CommFailedError)
    assert 1 in err.value.__cause__.dead_gids
    assert 1 in world.dead_gids


def test_peer_catching_commfailed_survives():
    """Rank code that catches CommFailedError recovers and finishes clean."""
    sim = Simulator()
    machine = Machine(sim, 2, 2, ETHERNET_10G)
    world = MpiWorld(machine)

    def main(mpi):
        if mpi.rank == 0:
            try:
                yield from mpi.recv(source=1, tag=7)
            except CommFailedError as e:
                return ("survived", tuple(e.dead_gids))
            return "unexpected"
        yield from mpi.compute(10.0)
        return None

    res = world.launch(main, slots=[0, 1])

    def assassin():
        yield Timeout(1.0)
        res.procs[1].kill("node failure")

    sim.spawn(assassin())
    sim.run()
    assert res.procs[0].result == ("survived", (1,))


def test_kill_during_redistribution_is_detected():
    """Killing a source mid-transfer fails the waiting peer with
    CommFailedError — no silent corruption, no hang."""
    from repro.redistribution import Dataset, FieldSpec, RedistributionPlan
    from repro.redistribution.api import RedistMethod, make_session

    n = 50_000
    specs = (FieldSpec("v", "dense", constant=True),)
    plan = RedistributionPlan.block(n, 2, 2)
    sim = Simulator()
    machine = Machine(sim, 4, 1, ETHERNET_10G)
    world = MpiWorld(machine)

    def main(mpi):
        r = mpi.rank
        lo, hi = plan.src_range(r)
        session = make_session(
            RedistMethod.P2P, mpi, mpi.comm_world, plan, names=["v"],
            src_rank=r, dst_rank=1 - r,  # full swap: everyone needs the other
            src_dataset=Dataset.create(
                n, specs, lo, hi, data={"v": np.zeros(hi - lo)}
            ),
            dst_dataset=Dataset.create(n, specs, *plan.dst_range(1 - r)),
        )
        yield from session.run_blocking()
        return "done"

    res = world.launch(main, slots=[0, 2])

    def assassin():
        yield Timeout(1e-4)  # mid-rendezvous
        res.procs[0].kill()

    sim.spawn(assassin())
    with pytest.raises(SimulationError) as err:
        sim.run()
    assert isinstance(err.value.__cause__, CommFailedError)
    assert res.procs[1].result != "done"


def test_killed_thread_reports_cleanup():
    """An aux thread killed mid-wait triggers its done event so the main
    flow can observe the failure rather than spin forever."""

    def main(mpi):
        def stuck_thread(tmpi):
            yield from tmpi.recv(source=0, tag=99)  # never sent

        handle = yield from mpi.spawn_thread(stuck_thread)
        yield from mpi.compute(0.01)
        handle.proc.kill("cancelled")
        yield from mpi.join_thread(handle)
        return handle.finished

    results, _ = run_spmd(main, 1, n_nodes=1, cores_per_node=2)
    assert results == [True]


def test_processkilled_cleanup_runs():
    """Rank code can catch ProcessKilled for cleanup (and must re-raise)."""
    cleaned = []

    sim = Simulator()
    machine = Machine(sim, 1, 2, ETHERNET_10G)
    world = MpiWorld(machine)

    def main(mpi):
        try:
            yield from mpi.compute(100.0)
        except ProcessKilled:
            cleaned.append(mpi.rank)
            raise

    res = world.launch(main, slots=[0])

    def assassin():
        yield Timeout(0.5)
        res.procs[0].kill()

    sim.spawn(assassin())
    sim.run()
    assert cleaned == [0]

def test_waitany_is_deterministic_across_settled_requests():
    """With several requests already complete, waitany returns the lowest
    index — the P2P redistribution state machine depends on this order."""

    def main(mpi):
        if mpi.rank == 0:
            reqs = []
            for t in (1, 2, 3):
                reqs.append((yield from mpi.irecv(source=1, tag=t)))
            yield from mpi.compute(1.0)  # let all three land
            order = []
            while reqs:
                idx, req = yield from mpi.waitany(reqs)
                order.append(req.data)
                reqs.pop(idx)
            return order
        for t in (3, 2, 1):  # sent in reverse tag order
            yield from mpi.send(f"m{t}", dest=0, tag=t)
        return None

    results, _ = run_spmd(main, 2, n_nodes=1, cores_per_node=2)
    assert results[0] == ["m1", "m2", "m3"]


def test_waitany_raises_when_peer_dies():
    """waitany on a request whose peer died raises CommFailedError instead
    of blocking forever (or returning a bogus index)."""
    sim = Simulator()
    machine = Machine(sim, 2, 2, ETHERNET_10G)
    world = MpiWorld(machine)

    def main(mpi):
        if mpi.rank == 0:
            req = yield from mpi.irecv(source=1, tag=5)
            try:
                yield from mpi.waitany([req])
            except CommFailedError as e:
                return ("failed-over", tuple(e.dead_gids))
            return "unexpected"
        yield from mpi.compute(10.0)
        return None

    res = world.launch(main, slots=[0, 1])

    def assassin():
        yield Timeout(1.0)
        res.procs[1].kill("node failure")

    sim.spawn(assassin())
    sim.run()
    assert res.procs[0].result == ("failed-over", (1,))


def test_nonblocking_test_raises_after_peer_death():
    """MPI_Test-style polling learns about a dead peer via CommFailedError —
    the overlapped (A/T) strategies poll instead of blocking."""
    sim = Simulator()
    machine = Machine(sim, 2, 2, ETHERNET_10G)
    world = MpiWorld(machine)

    def main(mpi):
        if mpi.rank == 0:
            req = yield from mpi.irecv(source=1, tag=9)
            seen = []
            try:
                while True:
                    done = yield from mpi.test(req)
                    seen.append(done)
                    if done:
                        return "completed"
                    yield from mpi.compute(0.2)
            except CommFailedError:
                # test() must have reported incomplete, never completed.
                assert not any(seen)
                return "test-raised"
        yield from mpi.compute(10.0)
        return None

    res = world.launch(main, slots=[0, 1])

    def assassin():
        yield Timeout(1.0)
        res.procs[1].kill("node failure")

    sim.spawn(assassin())
    sim.run()
    assert res.procs[0].result == "test-raised"


def test_testall_raises_after_peer_death():
    sim = Simulator()
    machine = Machine(sim, 2, 2, ETHERNET_10G)
    world = MpiWorld(machine)

    def main(mpi):
        if mpi.rank == 0:
            reqs = []
            for t in (1, 2):
                reqs.append((yield from mpi.irecv(source=1, tag=t)))
            try:
                while not (yield from mpi.testall(reqs)):
                    yield from mpi.compute(0.2)
            except CommFailedError as e:
                return ("testall-raised", tuple(e.dead_gids))
            return "unexpected"
        yield from mpi.compute(10.0)
        return None

    res = world.launch(main, slots=[0, 1])

    def assassin():
        yield Timeout(1.0)
        res.procs[1].kill("node failure")

    sim.spawn(assassin())
    sim.run()
    assert res.procs[0].result == ("testall-raised", (1,))
