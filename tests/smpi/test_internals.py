"""Internal invariants: pending ops, endpoint close, request objects."""

import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.simulate import Simulator
from repro.smpi import MpiWorld, MultiRequest, run_spmd
from repro.smpi.endpoint import Endpoint
from repro.smpi.requests import RecvRequest, SendRequest


def make_world():
    sim = Simulator()
    machine = Machine(sim, 2, 2, ETHERNET_10G)
    return sim, MpiWorld(machine)


def test_pending_op_participant_mismatch_detected():
    sim, world = make_world()
    world.pending_op("spawn:1:0", expected=3)
    with pytest.raises(RuntimeError, match="mismatch"):
        world.pending_op("spawn:1:0", expected=4)


def test_pending_op_over_arrival_detected():
    sim, world = make_world()
    op = world.pending_op("x", expected=1)
    assert op.arrive()
    with pytest.raises(RuntimeError, match="more arrivals"):
        op.arrive()


def test_endpoint_close_reports_leftovers():
    sim, world = make_world()
    ep = Endpoint(world, gid=99, node=world.machine.nodes[0])
    from repro.smpi import Communicator

    comm = Communicator(50, (99, 100))
    ep.posted.append(RecvRequest(sim, comm, source=0, tag=1))
    with pytest.raises(RuntimeError, match="pending traffic"):
        ep.close()


def test_endpoint_unbalanced_exit_progress():
    sim, world = make_world()
    ep = Endpoint(world, gid=98, node=world.machine.nodes[0])
    with pytest.raises(RuntimeError, match="unbalanced"):
        ep.exit_progress()


def test_multirequest_completion_semantics():
    sim, world = make_world()
    a = SendRequest(sim, 0, 0, 10)
    b = SendRequest(sim, 0, 0, 10)
    multi = MultiRequest(sim, [a, b])
    assert not multi.completed
    a._complete(None)
    assert not multi.completed
    b._complete(None)
    assert multi.completed
    # All children already done at construction -> complete immediately.
    multi2 = MultiRequest(sim, [a, b])
    assert multi2.completed
    # Empty aggregate completes immediately too.
    assert MultiRequest(sim, []).completed


def test_recv_request_matching_rules():
    sim, world = make_world()
    from repro.smpi import ANY_SOURCE, ANY_TAG, Communicator

    comm = Communicator(7, (1, 2, 3))
    req = RecvRequest(sim, comm, source=1, tag=5)
    assert req.matches(7, 1, 5)
    assert not req.matches(8, 1, 5)   # other communicator
    assert not req.matches(7, 2, 5)   # other source
    assert not req.matches(7, 1, 6)   # other tag
    wild = RecvRequest(sim, comm, source=ANY_SOURCE, tag=ANY_TAG)
    assert wild.matches(7, 2, 99)


def test_channel_spec_selects_fabric():
    sim, world = make_world()

    def main(mpi):
        return None
        yield

    res = world.launch(main, slots=[0, 1, 2])  # ranks 0,1 node0; rank 2 node1
    gids = list(res.comm.group)
    same = world.channel_spec(gids[0], gids[1])
    cross = world.channel_spec(gids[0], gids[2])
    assert same.name == "memory"
    assert cross.name == "ethernet"
    sim.run()
