"""API edge cases: error paths, accounting, small conveniences."""

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.simulate import Simulator
from repro.smpi import MpiWorld, run_spmd


def test_sendrecv_distinct_recv_tag():
    def main(mpi):
        other = 1 - mpi.rank
        got = yield from mpi.sendrecv(
            f"from-{mpi.rank}", other, other,
            tag=10 + mpi.rank, recv_tag=10 + other,
        )
        return got

    results, _ = run_spmd(main, 2)
    assert results == ["from-1", "from-0"]


def test_test_single_request():
    def main(mpi):
        if mpi.rank == 0:
            req = yield from mpi.isend(np.zeros(500_000), dest=1)
            early = yield from mpi.test(req)
            yield from mpi.wait(req)
            late = yield from mpi.test(req)
            return (early, late)
        yield from mpi.recv(source=0)
        return None

    results, _ = run_spmd(main, 2, n_nodes=2, cores_per_node=1)
    assert results[0] == (False, True)


def test_waitall_empty_and_waitany_empty():
    def main(mpi):
        out = yield from mpi.waitall([])
        assert out == []
        try:
            yield from mpi.waitany([])
        except ValueError:
            return "rejected"
        return "accepted"

    results, _ = run_spmd(main, 1)
    assert results == ["rejected"]


def test_bytes_by_label_accounting():
    sim = Simulator()
    machine = Machine(sim, 2, 1, ETHERNET_10G)
    world = MpiWorld(machine)

    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.send(np.zeros(1000), dest=1, label="tagged")
            yield from mpi.send(np.zeros(500), dest=1, label="tagged")
            yield from mpi.send(np.zeros(100), dest=1)  # unlabelled
            return None
        for _ in range(3):
            yield from mpi.recv(source=0)
        return None

    world.launch(main, slots=[0, 1])
    sim.run()
    assert world.bytes_by_label == {"tagged": 12000.0}


def test_sleep_does_not_consume_cpu():
    """A sleeping rank must not slow a co-located computing rank."""

    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.sleep(1.0)
            return None
        t0 = mpi.now
        yield from mpi.compute(0.5)
        return mpi.now - t0

    sim = Simulator()
    machine = Machine(sim, 1, 1, ETHERNET_10G)
    world = MpiWorld(machine)
    res = world.launch(main, slots=[0, 0])  # same single-core node
    sim.run()
    assert res.procs[1].result == pytest.approx(0.5)


def test_progress_tick_custom_cost():
    def main(mpi):
        t0 = mpi.now
        yield from mpi.progress_tick(cost=0.25)
        return mpi.now - t0

    results, _ = run_spmd(main, 1)
    assert results[0] == pytest.approx(0.25)


def test_finalize_with_pending_recv_raises():
    from repro.simulate import SimulationError

    def main(mpi):
        if mpi.rank == 0:
            _ = yield from mpi.irecv(source=1, tag=5)  # never satisfied
            mpi.finalize()
        return None

    with pytest.raises(SimulationError):
        run_spmd(main, 2)


def test_world_launch_rejects_empty_slots():
    sim = Simulator()
    machine = Machine(sim, 1, 1, ETHERNET_10G)
    world = MpiWorld(machine)

    def main(mpi):
        return None
        yield

    with pytest.raises(ValueError):
        world.launch(main, slots=[])


def test_slot_of_registry():
    sim = Simulator()
    machine = Machine(sim, 2, 2, ETHERNET_10G)
    world = MpiWorld(machine)

    def main(mpi):
        return mpi.node.node_id
        yield

    res = world.launch(main, slots=[3, 0])
    sim.run()
    assert [p.result for p in res.procs] == [1, 0]
    gids = list(res.comm.group)
    assert world.slot_of[gids[0]] == 3
    assert world.slot_of[gids[1]] == 0
