"""Point-to-point semantics: matching, ordering, wildcards, protocols."""

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, INFINIBAND_EDR
from repro.simulate import DeadlockError, SimulationError
from repro.smpi import ANY_SOURCE, ANY_TAG, run_spmd


def test_blocking_send_recv_delivers_payload():
    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.send({"a": 7, "b": 3.14}, dest=1, tag=11)
            return None
        data = yield from mpi.recv(source=0, tag=11)
        return data

    results, _sim = run_spmd(main, 2)
    assert results[1] == {"a": 7, "b": 3.14}


def test_numpy_payload_roundtrip():
    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.send(np.arange(1000, dtype=np.float64), dest=1)
            return None
        data = yield from mpi.recv(source=0)
        return data

    results, _ = run_spmd(main, 2)
    np.testing.assert_array_equal(results[1], np.arange(1000.0))


def test_send_buffer_snapshot_semantics():
    """Mutating the array after isend must not corrupt the message."""

    def main(mpi):
        if mpi.rank == 0:
            buf = np.ones(8)
            req = yield from mpi.isend(buf, dest=1)
            buf[:] = -1  # mutate after posting
            yield from mpi.wait(req)
            return None
        data = yield from mpi.recv(source=0)
        return data

    results, _ = run_spmd(main, 2)
    np.testing.assert_array_equal(results[1], np.ones(8))


def test_rendezvous_large_message_roundtrip():
    big = np.arange(200_000, dtype=np.float64)  # 1.6 MB >> eager threshold

    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.send(big, dest=1)
            return None
        data = yield from mpi.recv(source=0)
        return data

    results, sim = run_spmd(main, 2, n_nodes=2, cores_per_node=1)
    np.testing.assert_array_equal(results[1], big)
    # Time must be at least the serialisation time over Ethernet.
    assert sim.now >= big.nbytes / ETHERNET_10G.bandwidth


def test_tag_matching_separates_streams():
    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.send("tag5", dest=1, tag=5)
            yield from mpi.send("tag9", dest=1, tag=9)
            return None
        # Receive in reverse tag order: matching must be by tag, not arrival.
        nine = yield from mpi.recv(source=0, tag=9)
        five = yield from mpi.recv(source=0, tag=5)
        return (five, nine)

    results, _ = run_spmd(main, 2)
    assert results[1] == ("tag5", "tag9")


def test_same_tag_messages_do_not_overtake():
    def main(mpi):
        if mpi.rank == 0:
            for i in range(5):
                yield from mpi.send(i, dest=1, tag=7)
            return None
        got = []
        for _ in range(5):
            got.append((yield from mpi.recv(source=0, tag=7)))
        return got

    results, _ = run_spmd(main, 2)
    assert results[1] == [0, 1, 2, 3, 4]


def test_any_source_any_tag_wildcards():
    def main(mpi):
        if mpi.rank == 0:
            got = []
            for _ in range(2):
                data = yield from mpi.recv(source=ANY_SOURCE, tag=ANY_TAG)
                got.append(data)
            return sorted(got)
        yield from mpi.send(f"from-{mpi.rank}", dest=0, tag=mpi.rank)
        return None

    results, _ = run_spmd(main, 3)
    assert results[0] == ["from-1", "from-2"]


def test_status_carries_source_tag_nbytes():
    def main(mpi):
        if mpi.rank == 1:
            yield from mpi.send(np.zeros(4), dest=0, tag=42)
            return None
        if mpi.rank == 0:
            req = yield from mpi.irecv(source=ANY_SOURCE, tag=ANY_TAG)
            yield from mpi.wait(req)
            return (req.status.source, req.status.tag, req.status.nbytes)
        return None

    results, _ = run_spmd(main, 2)
    assert results[0] == (1, 42, 32)


def test_waitany_reports_first_completion():
    """Small message from a near rank beats a huge one: waitany sees it."""

    def main(mpi):
        if mpi.rank == 0:
            reqs = []
            r1 = yield from mpi.irecv(source=1, tag=1)
            r2 = yield from mpi.irecv(source=2, tag=2)
            idx, req = yield from mpi.waitany([r1, r2])
            yield from mpi.waitall([r1, r2])
            return idx
        if mpi.rank == 1:
            yield from mpi.send(np.zeros(1_000_000), dest=0, tag=1)  # slow
        else:
            yield from mpi.send(b"x", dest=0, tag=2)  # fast, eager
        return None

    results, _ = run_spmd(main, 3, n_nodes=3, cores_per_node=1)
    assert results[0] == 1  # index of the small message's request


def test_isend_irecv_with_testall_loop():
    def main(mpi):
        if mpi.rank == 0:
            req = yield from mpi.isend(np.ones(500_000), dest=1)
            while not (yield from mpi.testall([req])):
                yield from mpi.compute(1e-4)
            return "sent"
        req = yield from mpi.irecv(source=0)
        while not (yield from mpi.testall([req])):
            yield from mpi.compute(1e-4)
        return float(req.data.sum())

    results, _ = run_spmd(main, 2)
    assert results == ["sent", 500_000.0]


def test_unmatched_recv_deadlocks_with_report():
    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.recv(source=1, tag=99)  # never sent
        return None

    with pytest.raises(DeadlockError):
        run_spmd(main, 2)


def test_intranode_faster_than_internode():
    payload = np.zeros(4_000_000)  # 32 MB

    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.send(payload, dest=1)
            return None
        if mpi.rank == 1:
            yield from mpi.recv(source=0)
            return mpi.now
        return None

    # Same node (2 cores on 1 node):
    r_same, sim_same = run_spmd(main, 2, n_nodes=1, cores_per_node=2)
    # Different nodes:
    r_diff, sim_diff = run_spmd(main, 2, n_nodes=2, cores_per_node=1)
    assert r_same[1] < r_diff[1]


def test_infiniband_beats_ethernet_for_large_messages():
    payload = np.zeros(4_000_000)

    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.send(payload, dest=1)
        else:
            yield from mpi.recv(source=0)
        return mpi.now

    _, sim_e = run_spmd(main, 2, n_nodes=2, cores_per_node=1, fabric=ETHERNET_10G)
    _, sim_i = run_spmd(main, 2, n_nodes=2, cores_per_node=1, fabric=INFINIBAND_EDR)
    assert sim_i.now < sim_e.now


def test_self_message_via_comm():
    """MPI allows sending to yourself with non-blocking calls."""

    def main(mpi):
        req_r = yield from mpi.irecv(source=0, tag=3)
        req_s = yield from mpi.isend("self", dest=0, tag=3)
        yield from mpi.waitall([req_s, req_r])
        return req_r.data

    results, _ = run_spmd(main, 1)
    assert results == ["self"]


def test_eager_messages_complete_send_immediately():
    """An eager (small) send completes without the receiver ever calling recv
    — buffered semantics (the receive side would deadlock, so the sender
    just finishes; the payload sits in the unexpected queue)."""

    def main(mpi):
        if mpi.rank == 0:
            req = yield from mpi.isend(b"tiny", dest=1)
            assert req.completed  # buffered: done at injection
            return "ok"
        # Rank 1 receives much later.
        yield from mpi.compute(0.5)
        data = yield from mpi.recv(source=0)
        return data

    results, _ = run_spmd(main, 2)
    assert results == ["ok", b"tiny"]
