"""Progress-engine semantics and auxiliary threads — the paper's mechanism.

These tests pin down the behaviours Figures 4/5 depend on:

* rendezvous traffic stalls while the receiver/sender compute without MPI
  calls, and advances during Testall windows (strategy A);
* an auxiliary thread in a blocking wait keeps traffic flowing while the
  main flow computes (strategy T), at the price of CPU oversubscription.
"""

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.simulate import Simulator
from repro.smpi import MpiWorld, run_spmd

BIG = np.zeros(2_000_000)  # 16 MB, rendezvous on any fabric


def run_world(main, n, *, n_nodes=2, cores=1, args=()):
    sim = Simulator()
    machine = Machine(sim, n_nodes, cores, ETHERNET_10G)
    world = MpiWorld(machine)
    res = world.launch(main, slots=range(n), args=args)
    sim.run()
    return [p.result for p in res.procs], sim


def test_rendezvous_stalls_without_receiver_progress():
    """If the receiver computes for a long time before posting its receive,
    the payload cannot start flowing earlier."""
    compute_time = 0.5

    def main(mpi):
        if mpi.rank == 0:
            req = yield from mpi.isend(BIG, dest=1)
            yield from mpi.wait(req)
            return mpi.now
        yield from mpi.compute(compute_time)
        yield from mpi.recv(source=0)
        return mpi.now

    results, sim = run_world(main, 2)
    wire = BIG.nbytes / ETHERNET_10G.bandwidth
    # Send completes only after the receiver showed up at t=0.5.
    assert results[0] >= compute_time + wire * 0.99


def test_sender_without_progress_stalls_cts():
    """Receiver posts early, but the sender leaves MPI after isend and
    computes: the CTS waits for the sender's next progress window."""
    compute_time = 0.4

    def main(mpi):
        if mpi.rank == 0:
            req = yield from mpi.isend(BIG, dest=1)
            yield from mpi.compute(compute_time)  # no progress here
            yield from mpi.wait(req)
            return mpi.now
        yield from mpi.recv(source=0)
        return mpi.now

    results, sim = run_world(main, 2)
    wire = BIG.nbytes / ETHERNET_10G.bandwidth
    # Data could not start before the sender re-entered MPI at ~0.4.
    assert results[1] >= compute_time + wire * 0.99


def test_testall_windows_let_rendezvous_advance():
    """Strategy A: the sender computes in slices with Testall between them —
    the handshake completes at the first window and data flows during the
    subsequent compute."""
    slice_time = 0.05

    def main(mpi):
        if mpi.rank == 0:
            req = yield from mpi.isend(BIG, dest=1)
            iterations = 0
            while not (yield from mpi.testall([req])):
                yield from mpi.compute(slice_time)
                iterations += 1
            return iterations
        yield from mpi.recv(source=0)
        return mpi.now

    results, sim = run_world(main, 2)
    wire = BIG.nbytes / ETHERNET_10G.bandwidth
    # Receiver got the data roughly at wire speed (plus <= 1 slice of delay).
    assert results[1] <= wire + 2 * slice_time + 0.01
    assert results[0] >= 1  # the sender really did overlap compute


def test_aux_thread_progresses_while_main_computes():
    """Strategy T: a thread does the blocking send; the payload is delivered
    while the main flow computes, without any Testall."""

    def sender_thread(tmpi, data):
        req = yield from tmpi.isend(data, dest=1)
        yield from tmpi.wait(req)
        return "thread-sent"

    def main(mpi):
        if mpi.rank == 0:
            handle = yield from mpi.spawn_thread(sender_thread, BIG)
            yield from mpi.compute(1.0)  # long compute, no MPI calls
            assert handle.finished  # transfer finished long before
            return handle.result
        t0 = mpi.now
        yield from mpi.recv(source=0)
        return mpi.now - t0

    results, sim = run_world(main, 2, cores=2)
    wire = BIG.nbytes / ETHERNET_10G.bandwidth
    assert results[0] == "thread-sent"
    assert results[1] <= 2 * wire + 0.02  # delivered at ~wire speed


def test_aux_thread_oversubscribes_cpu():
    """A polling thread on a fully busy node slows the main compute down
    (the paper's strategy-T cost)."""

    def poller_thread(tmpi):
        # Blocking recv that only completes near the end: polls throughout.
        data = yield from tmpi.recv(source=1, tag=5)
        return data

    def main(mpi):
        if mpi.rank == 0:
            handle = yield from mpi.spawn_thread(poller_thread)
            t0 = mpi.now
            yield from mpi.compute(1.0)
            elapsed = mpi.now - t0
            yield from mpi.send(b"done", dest=1, tag=6)
            yield from mpi.join_thread(handle)
            return elapsed
        yield from mpi.recv(source=0, tag=6)
        yield from mpi.send(b"x", dest=0, tag=5)
        return None

    # cores=1: main compute + polling thread share one core -> ~2x slower.
    results, sim = run_world(main, 2, n_nodes=2, cores=1)
    assert results[0] >= 1.9

    # 2 cores on rank 0's node, rank 1 elsewhere: the spare core absorbs the
    # thread -> no slowdown.
    sim2 = Simulator()
    machine = Machine(sim2, 2, 2, ETHERNET_10G)
    world = MpiWorld(machine)
    res = world.launch(main, slots=[0, 2])  # rank0 -> node0, rank1 -> node1
    sim2.run()
    results2 = [p.result for p in res.procs]
    assert results2[0] == pytest.approx(1.0, rel=0.05)


def test_blocking_wait_polls_and_slows_colocated_compute():
    """A rank stuck in MPI_Recv (polling) steals CPU from its node mate —
    the Baseline oversubscription mechanism."""

    def main(mpi):
        if mpi.rank == 0:
            # Blocked in recv for ~1s, polling.
            yield from mpi.recv(source=2, tag=9)
            return None
        if mpi.rank == 1:
            t0 = mpi.now
            yield from mpi.compute(1.0)
            elapsed = mpi.now - t0
            yield from mpi.send(b"go", dest=2, tag=8)
            return elapsed
        yield from mpi.recv(source=1, tag=8)
        yield from mpi.send(b"x", dest=0, tag=9)
        return None

    # Ranks 0,1 share node0 (1 core each? no: cores=1 -> both on node0!)
    # Layout: cores_per_node=2 puts ranks 0,1 on node0, rank 2 on node1.
    results, sim = run_world(main, 3, n_nodes=2, cores=2)
    # node0 has 2 cores and 2 demands (poller + compute): no slowdown...
    assert results[1] == pytest.approx(1.0, rel=0.05)

    # Now 1 core per node, ranks 0,1 forced onto the same node via slots:
    sim2 = Simulator()
    machine = Machine(sim2, 2, 1, ETHERNET_10G)
    world = MpiWorld(machine)
    res = world.launch(main, slots=[0, 0, 1])  # ranks 0,1 share node0's core
    sim2.run()
    results2 = [p.result for p in res.procs]
    assert results2[1] >= 1.9  # poller halves the computing rank's rate


def test_thread_shares_endpoint_with_main():
    """Messages sent to a rank can be received by its thread (same rank)."""

    def recv_thread(tmpi):
        data = yield from tmpi.recv(source=1, tag=3)
        return data

    def main(mpi):
        if mpi.rank == 0:
            handle = yield from mpi.spawn_thread(recv_thread)
            result = yield from mpi.join_thread(handle)
            return result
        yield from mpi.send("to-thread", dest=0, tag=3)
        return None

    results, _ = run_world(main, 2, cores=2)
    assert results[0] == "to-thread"


def test_thread_handle_finished_flag():
    def quick_thread(tmpi):
        yield from tmpi.compute(0.01)
        return 42

    def main(mpi):
        handle = yield from mpi.spawn_thread(quick_thread)
        assert not handle.finished
        yield from mpi.compute(1.0)
        assert handle.finished
        return handle.result

    results, _ = run_world(main, 1, cores=2)
    assert results[0] == 42
