"""One-sided communication: windows, put/get, fences, notifications."""

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, INFINIBAND_EDR, Machine
from repro.simulate import Simulator, WaitEvent
from repro.smpi import ArrayExposure, MpiWorld, run_spmd


def test_put_writes_target_exposure_without_target_mpi_calls():
    """The target only computes; the put lands anyway (true one-sidedness)."""

    def main(mpi):
        local = np.zeros(10)
        win = yield from mpi.win_create(ArrayExposure(local))
        if mpi.rank == 0:
            ev = yield from mpi.win_put(win, 1, (2, np.array([7.0, 8.0, 9.0])))
            yield from mpi.compute(0.2)  # plenty of time for delivery
            assert ev.triggered
            return None
        yield from mpi.compute(0.2)  # never calls MPI while the put lands
        return local.copy()

    results, _ = run_spmd(main, 2, n_nodes=2, cores_per_node=2)
    np.testing.assert_array_equal(results[1][2:5], [7.0, 8.0, 9.0])
    assert results[1][0] == 0.0


def test_get_reads_remote_data():
    def main(mpi):
        local = np.arange(8, dtype=np.float64) * (mpi.rank + 1)
        win = yield from mpi.win_create(ArrayExposure(local))
        if mpi.rank == 0:
            data = yield from mpi.win_get(win, 1, offset=2, count=3)
            return data
        yield from mpi.compute(0.05)
        return None

    results, _ = run_spmd(main, 2, n_nodes=2, cores_per_node=2)
    np.testing.assert_array_equal(results[0], [4.0, 6.0, 8.0])


def test_get_from_unexposed_rank_rejected():
    def main(mpi):
        win = yield from mpi.win_create(
            ArrayExposure(np.zeros(4)) if mpi.rank == 0 else None
        )
        if mpi.rank == 0:
            try:
                yield from mpi.win_get(win, 1, 0, 1)
            except ValueError:
                return "rejected"
        yield from mpi.compute(0.01)
        return None

    results, _ = run_spmd(main, 2)
    assert results[0] == "rejected"


def test_fence_completes_epoch():
    """After the fence, every put has landed on every rank."""
    p = 4

    def main(mpi):
        local = np.zeros(p)
        win = yield from mpi.win_create(ArrayExposure(local))
        # Everyone puts its rank into everyone else's slot [rank].
        for target in range(p):
            if target != mpi.rank:
                yield from mpi.win_put(
                    win, target, (mpi.rank, np.array([float(mpi.rank + 1)]))
                )
        yield from mpi.win_fence(win)
        return local.copy()

    results, _ = run_spmd(main, p, n_nodes=4, cores_per_node=2)
    for r in range(p):
        for src in range(p):
            if src != r:
                assert results[r][src] == float(src + 1)


def test_fence_with_no_ops_is_cheap_sync():
    def main(mpi):
        win = yield from mpi.win_create(None)
        yield from mpi.win_fence(win)
        return mpi.now

    results, _ = run_spmd(main, 3)
    assert all(t < 0.1 for t in results)


def test_notification_counters():
    def main(mpi):
        local = np.zeros(4)
        win = yield from mpi.win_create(ArrayExposure(local))
        if mpi.rank == 0:
            # Wait for exactly 2 puts using the notification event.
            ev = win.notification_event(mpi.gid, threshold=2)
            got = yield WaitEvent(ev)
            return got
        yield from mpi.win_put(win, 0, (mpi.rank, np.array([1.0])))
        return None

    results, _ = run_spmd(main, 3, n_nodes=3, cores_per_node=1)
    assert results[0] == 2


def test_notification_event_pre_satisfied():
    def main(mpi):
        win = yield from mpi.win_create(ArrayExposure(np.zeros(2)))
        if mpi.rank == 1:
            yield from mpi.win_put(win, 0, (0, np.array([5.0])))
        yield from mpi.win_fence(win)
        if mpi.rank == 0:
            ev = win.notification_event(mpi.gid, threshold=1)
            assert ev.triggered  # already satisfied after the fence
            return ev.value
        return None

    results, _ = run_spmd(main, 2)
    assert results[0] == 1


def test_put_faster_on_infiniband():
    payload = (0, np.zeros(1_000_000))

    def main(mpi):
        local = np.zeros(1_000_000)
        win = yield from mpi.win_create(ArrayExposure(local))
        if mpi.rank == 0:
            ev = yield from mpi.win_put(win, 1, payload)
            yield from self_wait(mpi, ev)
            return mpi.now
        yield from mpi.compute(2.0)
        return None

    def self_wait(mpi, ev):
        while not ev.triggered:
            yield from mpi.compute(1e-4)

    t = {}
    for fabric in (ETHERNET_10G, INFINIBAND_EDR):
        sim = Simulator()
        machine = Machine(sim, 2, 2, fabric)
        world = MpiWorld(machine)
        res = world.launch(main, slots=[0, 2])
        sim.run()
        t[fabric.name] = res.procs[0].result
    assert t["infiniband"] < t["ethernet"]
