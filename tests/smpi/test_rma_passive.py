"""Passive-target RMA: lock epochs, the rendezvous-progress rule, and the
deterministic FIFO lock word.

The paper's §5 one-sided arm rests on one artifact worth testing on its
own: on non-RDMA fabrics, rendezvous-sized one-sided payloads only
complete while the *data-holding* side is inside an MPI call (software-
agent progress), while RDMA fabrics complete them in hardware with no
remote cooperation at all.
"""

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, INFINIBAND_EDR, Machine
from repro.simulate import Simulator
from repro.smpi import ArrayExposure, LOCK_EXCLUSIVE, LOCK_SHARED, MpiWorld, run_spmd

#: 1 M float64 -> 8 MB, far past every inter-node eager threshold.
BIG = 1_000_000
#: how long the target computes without touching MPI (sim seconds).
QUIET = 0.05


def _timed_put_unlock(fabric):
    """Origin locks/puts/unlocks while the target computes MPI-free for
    ``QUIET`` seconds; returns (origin time after unlock, target data)."""

    def main(mpi):
        local = np.zeros(BIG)
        win = yield from mpi.win_create(ArrayExposure(local))
        yield from mpi.barrier()
        if mpi.rank == 0:
            yield from mpi.win_lock(win, 1)
            yield from mpi.win_put(win, 1, (0, np.ones(BIG)))
            yield from mpi.win_unlock(win, 1)
            t_done = mpi.now
            yield from mpi.barrier()
            return t_done
        yield from mpi.compute(QUIET)  # no MPI: nothing can progress here
        yield from mpi.barrier()
        return local.copy()

    sim = Simulator()
    machine = Machine(sim, 2, 1, fabric)
    world = MpiWorld(machine)
    res = world.launch(main, slots=[0, 1])
    sim.run()
    return res.procs[0].result, res.procs[1].result


def test_ethernet_epoch_put_waits_for_target_progress():
    """Non-RDMA fabric: the unlock's flush can only finish once the target
    re-enters MPI, so the origin is held for the target's whole quiet
    phase despite the wire being long since drained."""
    t_done, data = _timed_put_unlock(ETHERNET_10G)
    assert t_done >= QUIET
    np.testing.assert_array_equal(data, np.ones(BIG))


def test_infiniband_epoch_put_completes_in_hardware():
    """RDMA fabric: same program, but the put lands at wire speed with the
    target still crunching — true one-sided completion."""
    t_done, data = _timed_put_unlock(INFINIBAND_EDR)
    assert t_done < QUIET / 2
    np.testing.assert_array_equal(data, np.ones(BIG))


def test_exclusive_epochs_serialize():
    """Two exclusive lockers of the same target never hold overlapping
    epochs; grant order is the deterministic FIFO arrival order."""
    spans = []

    def main(mpi):
        win = yield from mpi.win_create(ArrayExposure(np.zeros(4)))
        if mpi.rank != 0:
            # Stagger arrivals so the FIFO order is well-defined.
            yield from mpi.compute(1e-4 * mpi.rank)
            yield from mpi.win_lock(win, 0, exclusive=True)
            t0 = mpi.now
            yield from mpi.win_put(win, 0, (mpi.rank, np.array([1.0])))
            yield from mpi.compute(0.003)
            yield from mpi.win_unlock(win, 0)
            spans.append((mpi.rank, t0, mpi.now))
        yield from mpi.barrier()

    run_spmd(main, 3, n_nodes=3, cores_per_node=1)
    assert [r for r, _t0, _t1 in spans] == [1, 2]
    (_, a0, a1), (_, b0, b1) = spans
    assert a1 <= b0 or b1 <= a0  # epochs never overlap


def test_shared_lockers_overlap():
    """Shared epochs on one target are granted together, not serialized."""
    spans = []

    def main(mpi):
        win = yield from mpi.win_create(ArrayExposure(np.zeros(4)))
        if mpi.rank != 0:
            yield from mpi.win_lock(win, 0)
            t0 = mpi.now
            yield from mpi.compute(0.003)
            yield from mpi.win_unlock(win, 0)
            spans.append((t0, mpi.now))
        yield from mpi.barrier()

    run_spmd(main, 3, n_nodes=3, cores_per_node=1)
    (a0, a1), (b0, b1) = spans
    assert a0 < b1 and b0 < a1  # the two epochs overlap


def test_locked_get_reads_target_data():
    def main(mpi):
        local = np.arange(8, dtype=np.float64) * (mpi.rank + 1)
        win = yield from mpi.win_create(ArrayExposure(local))
        yield from mpi.barrier()
        if mpi.rank == 0:
            yield from mpi.win_lock(win, 1)
            data = yield from mpi.win_get(win, 1, offset=2, count=3)
            yield from mpi.win_unlock(win, 1)
            yield from mpi.barrier()
            return data
        yield from mpi.compute(0.01)
        yield from mpi.barrier()
        return None

    results, _ = run_spmd(main, 2, n_nodes=2, cores_per_node=1)
    np.testing.assert_array_equal(results[0], [4.0, 6.0, 8.0])


def test_lock_epoch_misuse_raises():
    """Double lock, and flush/unlock outside an epoch: usage errors, not
    sanitizer findings — they raise where the bug is."""

    def main(mpi):
        win = yield from mpi.win_create(ArrayExposure(np.zeros(2)))
        caught = []
        if mpi.rank == 0:
            try:
                yield from mpi.win_unlock(win, 1)
            except ValueError:
                caught.append("unlock")
            try:
                yield from mpi.win_flush(win, 1)
            except ValueError:
                caught.append("flush")
            yield from mpi.win_lock(win, 1)
            try:
                yield from mpi.win_ilock(win, 1)
            except ValueError:
                caught.append("double-lock")
            yield from mpi.win_unlock(win, 1)
        yield from mpi.barrier()
        return caught

    results, _ = run_spmd(main, 2, n_nodes=2, cores_per_node=1)
    assert results[0] == ["unlock", "flush", "double-lock"]


def test_epoch_bookkeeping_and_modes():
    def main(mpi):
        win = yield from mpi.win_create(ArrayExposure(np.zeros(2)))
        if mpi.rank == 0:
            assert win.epoch_mode(mpi.gid, win.comm.peer_gid(1)) is None
            yield from mpi.win_lock(win, 1, exclusive=True)
            tgid = win.comm.peer_gid(1)
            assert win.epoch_mode(mpi.gid, tgid) == LOCK_EXCLUSIVE
            assert win.open_epochs(mpi.gid) == [tgid]
            yield from mpi.win_unlock(win, 1)
            assert win.epoch_mode(mpi.gid, tgid) is None
            assert win.open_epochs(mpi.gid) == []
        yield from mpi.barrier()

    run_spmd(main, 2, n_nodes=2, cores_per_node=1)
    assert LOCK_SHARED != LOCK_EXCLUSIVE
