"""gather / scatter / reduce / exscan correctness across sizes and roots."""

import numpy as np
import pytest

from repro.smpi import op_max, op_sum, run_spmd

SIZES = [1, 2, 3, 5, 8]


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_gather(p, root):
    root = p - 1 if root == "last" else 0

    def main(mpi):
        result = yield from mpi.gather(f"item-{mpi.rank}", root=root)
        return result

    results, _ = run_spmd(main, p)
    for r in range(p):
        if r == root:
            assert results[r] == [f"item-{i}" for i in range(p)]
        else:
            assert results[r] is None


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_scatter(p, root):
    root = p - 1 if root == "last" else 0

    def main(mpi):
        values = [i * 10 for i in range(p)] if mpi.rank == root else None
        mine = yield from mpi.scatter(values, root=root)
        return mine

    results, _ = run_spmd(main, p)
    assert results == [i * 10 for i in range(p)]


def test_scatter_arrays_roundtrip():
    p = 4

    def main(mpi):
        values = (
            [np.full(3, float(i)) for i in range(p)] if mpi.rank == 0 else None
        )
        mine = yield from mpi.scatter(values)
        return float(mine.sum())

    results, _ = run_spmd(main, p)
    assert results == [0.0, 3.0, 6.0, 9.0]


def test_scatter_root_validates_length():
    def main(mpi):
        try:
            yield from mpi.scatter([1, 2, 3] if mpi.rank == 0 else None)
        except ValueError:
            return "rejected"
        return "accepted"

    from repro.simulate import DeadlockError, SimulationError

    # Root rejects synchronously; the other rank then has no partner.
    with pytest.raises((DeadlockError, SimulationError)):
        run_spmd(main, 2)


@pytest.mark.parametrize("p", SIZES)
def test_reduce(p):
    def main(mpi):
        result = yield from mpi.reduce(mpi.rank + 1, op_sum, root=0)
        return result

    results, _ = run_spmd(main, p)
    assert results[0] == p * (p + 1) // 2
    assert all(r is None for r in results[1:])


def test_reduce_max_at_nonzero_root():
    p = 5

    def main(mpi):
        result = yield from mpi.reduce((mpi.rank * 7) % p, op_max, root=2)
        return result

    results, _ = run_spmd(main, p)
    assert results[2] == max((r * 7) % p for r in range(p))


@pytest.mark.parametrize("p", SIZES)
def test_exscan_prefix_sums(p):
    def main(mpi):
        result = yield from mpi.exscan(mpi.rank + 1, op_sum)
        return result

    results, _ = run_spmd(main, p)
    assert results[0] is None
    for r in range(1, p):
        assert results[r] == sum(range(1, r + 1))


def test_exscan_computes_distributed_offsets():
    """The canonical use: variable-size blocks -> starting offsets."""
    sizes = [3, 1, 4, 1, 5]

    def main(mpi):
        offset = yield from mpi.exscan(sizes[mpi.rank], op_sum)
        return 0 if offset is None else offset

    results, _ = run_spmd(main, len(sizes))
    expected = [0, 3, 4, 8, 9]
    assert results == expected


def test_gather_then_scatter_inverse():
    p = 6

    def main(mpi):
        gathered = yield from mpi.gather(mpi.rank * 2, root=3)
        back = yield from mpi.scatter(gathered, root=3)
        return back

    results, _ = run_spmd(main, p)
    assert results == [r * 2 for r in range(p)]
