"""Larger-world stress: collectives and redistribution at 64+ ranks."""

import numpy as np
import pytest

from repro.redistribution import Dataset, FieldSpec, RedistMethod, RedistributionPlan
from repro.redistribution.api import make_session
from repro.smpi import run_spmd


def test_allreduce_64_ranks():
    def main(mpi):
        total = yield from mpi.allreduce(mpi.rank + 1)
        return total

    results, _ = run_spmd(main, 64, n_nodes=8, cores_per_node=8)
    assert all(r == 64 * 65 // 2 for r in results)


def test_bruck_alltoall_48_ranks():
    p = 48

    def main(mpi):
        got = yield from mpi.alltoall([mpi.rank * p + d for d in range(p)])
        return got == [s * p + mpi.rank for s in range(p)]

    results, _ = run_spmd(main, p, n_nodes=8, cores_per_node=6)
    assert all(results)


def test_allgatherv_40_ranks_ring():
    p = 40

    def main(mpi):
        blocks = yield from mpi.allgatherv(np.array([float(mpi.rank)]))
        return float(np.concatenate(blocks).sum())

    results, _ = run_spmd(main, p, n_nodes=8, cores_per_node=5)
    assert all(r == sum(range(p)) for r in results)


def test_redistribution_64_to_24():
    n = 6400
    specs = (FieldSpec("v", "dense", constant=True),)
    plan = RedistributionPlan.block(n, 64, 24)
    global_v = np.arange(n, dtype=np.float64)

    def main(mpi):
        r = mpi.rank
        src = r if r < 64 else None
        dst = r if r < 24 else None
        session = make_session(
            RedistMethod.P2P, mpi, mpi.comm_world, plan, names=["v"],
            src_rank=src, dst_rank=dst,
            src_dataset=(
                Dataset.create(n, specs, *plan.src_range(src),
                               data={"v": global_v[slice(*plan.src_range(src))]})
                if src is not None else None
            ),
            dst_dataset=(
                Dataset.create(n, specs, *plan.dst_range(dst))
                if dst is not None else None
            ),
        )
        yield from session.run_blocking()
        if dst is not None:
            lo, hi = plan.dst_range(dst)
            return bool(
                np.array_equal(session.dst_dataset.stores["v"].data,
                               global_v[lo:hi])
            )
        return None

    results, _ = run_spmd(main, 64, n_nodes=8, cores_per_node=8)
    assert all(r for r in results[:24])


def test_exscan_64_ranks():
    def main(mpi):
        offset = yield from mpi.exscan(1)
        return 0 if offset is None else offset

    results, _ = run_spmd(main, 64, n_nodes=8, cores_per_node=8)
    assert results == list(range(64))
