"""Dynamic process management: Comm_spawn, intercomm P2P, merge, finalize."""

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.simulate import Simulator
from repro.smpi import MpiWorld, SpawnModel, run_spmd


def run_world(main, n, *, n_nodes=2, cores=2, spawn_model=None, args=()):
    sim = Simulator()
    machine = Machine(sim, n_nodes, cores, ETHERNET_10G)
    world = MpiWorld(machine, spawn_model=spawn_model)
    res = world.launch(main, slots=range(n), args=args)
    sim.run()
    return [p.result for p in res.procs], sim, world


def child_echo(mpi):
    """Child: receive a number from parent rank 0, send back double."""
    assert mpi.parent is not None
    x = yield from mpi.recv(source=0, comm=mpi.parent)
    yield from mpi.send(x * 2, dest=0, comm=mpi.parent)
    mpi.finalize()
    return x


def test_spawn_creates_children_with_parent_intercomm():
    def main(mpi):
        inter = yield from mpi.comm_spawn(child_echo, slots=[2, 3])
        assert inter.is_inter
        assert inter.size == 2 and inter.remote_size == 2
        if mpi.rank == 0:
            yield from mpi.send(21, dest=0, comm=inter)
            yield from mpi.send(33, dest=1, comm=inter)
            a = yield from mpi.recv(source=0, comm=inter)
            b = yield from mpi.recv(source=1, comm=inter)
            return (a, b)
        return None

    results, sim, world = run_world(main, 2)
    assert results[0] == (42, 66)


def test_spawn_cost_model_applied():
    model = SpawnModel(base=1.0, per_process=0.1, per_node=0.5)

    def main(mpi):
        t0 = mpi.now
        yield from mpi.comm_spawn(child_noop, slots=[2, 3])
        return mpi.now - t0

    results, sim, world = run_world(main, 2, spawn_model=model)
    # 2 procs on slots 2,3 -> node 1 (cores=2): cost = 1.0 + 0.2 + 0.5
    assert results[0] >= 1.7 - 1e-9


def child_noop(mpi):
    mpi.finalize()
    return "child-done"
    yield  # pragma: no cover


def test_spawn_is_collective_all_parents_get_same_intercomm():
    def main(mpi):
        inter = yield from mpi.comm_spawn(child_noop, slots=[2])
        return (inter.ctx_id, inter.size, inter.remote_size)

    results, sim, world = run_world(main, 2)
    assert results[0] == results[1]
    assert results[0][1:] == (2, 1)


def test_spawn_children_placed_on_requested_slots():
    def child(mpi):
        mpi.finalize()
        return mpi.node.node_id
        yield  # pragma: no cover

    def main(mpi):
        if True:
            yield from mpi.comm_spawn(child, slots=[2, 3])
        return None

    results, sim, world = run_world(main, 2, n_nodes=2, cores=2)
    child_nodes = [
        p.result for p in sim._processes if p.name.startswith("spawned")
    ]
    assert child_nodes == [1, 1]  # slots 2,3 on node 1


def test_merge_intercomm_low_side_keeps_low_ranks():
    def child(mpi):
        merged = yield from mpi.merge_intercomm(mpi.parent, high=True)
        my_merged_rank = merged.rank_of_gid(mpi.gid)
        # New processes take ranks after the sources.
        total = yield from mpi.allreduce(1, comm=merged)
        mpi.finalize()
        return (my_merged_rank, total)

    def main(mpi):
        inter = yield from mpi.comm_spawn(child, slots=[2, 3])
        merged = yield from mpi.merge_intercomm(inter, high=False)
        my_merged_rank = merged.rank_of_gid(mpi.gid)
        total = yield from mpi.allreduce(1, comm=merged)
        return (my_merged_rank, total, merged.size)

    results, sim, world = run_world(main, 2)
    assert results[0] == (0, 4, 4)
    assert results[1] == (1, 4, 4)
    child_results = [
        p.result for p in sim._processes if p.name.startswith("spawned")
    ]
    assert sorted(child_results) == [(2, 4), (3, 4)]


def test_merge_with_consistent_flags_required():
    def child(mpi):
        merged = yield from mpi.merge_intercomm(mpi.parent, high=False)
        mpi.finalize()
        return None

    def main(mpi):
        inter = yield from mpi.comm_spawn(child, slots=[1])
        # Both sides pass high=False -> must fail loudly.
        yield from mpi.merge_intercomm(inter, high=False)
        return None

    with pytest.raises(Exception):
        run_world(main, 1)


def test_sources_can_finalize_after_handoff():
    """Baseline shape: parents send data to children and exit; children
    continue alone."""
    payload = np.arange(100.0)

    def child(mpi):
        data = yield from mpi.recv(source=0, comm=mpi.parent)
        # Parents are gone by now (or going); child continues computing.
        yield from mpi.compute(0.01)
        mpi.finalize()
        return float(data.sum())

    def main(mpi):
        inter = yield from mpi.comm_spawn(child, slots=[1])
        if mpi.rank == 0:
            yield from mpi.send(payload, dest=0, comm=inter)
        yield from mpi.disconnect(inter)
        mpi.finalize()
        return "source-exited"

    results, sim, world = run_world(main, 1)
    assert results == ["source-exited"]
    child_results = [
        p.result for p in sim._processes if p.name.startswith("spawned")
    ]
    assert child_results == [float(payload.sum())]


def test_spawned_group_has_own_comm_world():
    def child(mpi):
        total = yield from mpi.allreduce(mpi.rank + 1)
        mpi.finalize()
        return total

    def main(mpi):
        yield from mpi.comm_spawn(child, slots=[2, 3, 4])
        return None

    results, sim, world = run_world(main, 2, n_nodes=3, cores=2)
    child_results = [
        p.result for p in sim._processes if p.name.startswith("spawned")
    ]
    assert child_results == [6, 6, 6]


def test_two_sequential_spawns_from_same_comm():
    def main(mpi):
        i1 = yield from mpi.comm_spawn(child_noop, slots=[2])
        i2 = yield from mpi.comm_spawn(child_noop, slots=[3])
        return (i1.ctx_id != i2.ctx_id)

    results, sim, world = run_world(main, 2)
    assert results == [True, True]


def test_spawn_model_validation():
    model = SpawnModel()
    with pytest.raises(ValueError):
        model.cost(-1, 1)
    assert model.cost(0, 0) == 0.0
    assert model.cost(10, 2) == pytest.approx(model.base + 10 * model.per_process + 2 * model.per_node)
