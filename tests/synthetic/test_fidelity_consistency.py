"""Cross-fidelity consistency: 'sketch' must preserve 'full' orderings.

The evaluation sweeps run at sketch fidelity for tractability; this test
verifies the central ordering (Merge sync reconfig < Baseline sync
reconfig; async app time < sync app time) holds identically at both
fidelities on the same cells.
"""

import pytest

from repro.harness.runner import RunSpec, run_one
from repro.synthetic import cg_emulation_config


def times(fidelity, config_key, ns=8, nt=4):
    cfg = cg_emulation_config("tiny", fidelity=fidelity)
    r = run_one(
        RunSpec(ns, nt, config_key, "ethernet", "tiny", 0), synth_config=cfg
    )
    return r.reconfig_time, r.app_time


@pytest.mark.parametrize("fidelity", ["full", "sketch"])
def test_merge_beats_baseline_at_both_fidelities(fidelity):
    merge_rt, _ = times(fidelity, "merge-p2p-s")
    base_rt, _ = times(fidelity, "baseline-p2p-s")
    assert merge_rt < base_rt


@pytest.mark.parametrize("fidelity", ["full", "sketch"])
def test_async_app_time_beats_sync_at_both_fidelities(fidelity):
    _, sync_app = times(fidelity, "merge-col-s")
    _, async_app = times(fidelity, "merge-col-a")
    assert async_app < sync_app


def test_fidelities_agree_on_magnitudes():
    for key in ("merge-col-s", "baseline-p2p-a"):
        rt_full, app_full = times("full", key)
        rt_sketch, app_sketch = times("sketch", key)
        assert app_sketch == pytest.approx(app_full, rel=0.5)
        assert rt_sketch == pytest.approx(rt_full, rel=0.6)
