"""Scale presets: ladders, pair counts, spawn models, scaling coherence."""

import pytest

from repro.synthetic.presets import SCALES, cg_emulation_config


def test_paper_scale_matches_the_paper():
    p = SCALES["paper"]
    assert p.n_nodes == 8 and p.cores_per_node == 20
    assert max(p.ladder) == 160
    assert len(p.pairs()) == 42
    assert p.iterations == 1000 and p.reconfigure_at == 500
    assert p.repetitions == 5


@pytest.mark.parametrize("scale", ["tiny", "small", "paper"])
def test_scale_internal_consistency(scale):
    p = SCALES[scale]
    assert max(p.ladder) <= p.n_nodes * p.cores_per_node
    assert 0 < p.reconfigure_at < p.iterations
    assert p.spawn_model.cost(max(p.ladder), p.n_nodes) > 0
    # Pairs are all ordered non-equal ladder combinations.
    pairs = p.pairs()
    assert len(pairs) == len(p.ladder) * (len(p.ladder) - 1)
    assert all(a != b for a, b in pairs)


def test_data_scales_proportionally():
    paper = cg_emulation_config("paper")
    small = cg_emulation_config("small")
    assert small.total_bytes == pytest.approx(paper.total_bytes / 8, rel=0.01)
    assert small.async_fraction == pytest.approx(paper.async_fraction, abs=1e-6)


def test_cg_preset_has_the_six_stages():
    cfg = cg_emulation_config("small")
    kinds = [s.kind for s in cfg.stages]
    assert kinds.count("compute") == 3
    assert kinds.count("allreduce") == 2
    assert kinds.count("allgatherv") == 1
    # Allgatherv moves N doubles; allreduce moves one double.
    gather = next(s for s in cfg.stages if s.kind == "allgatherv")
    assert gather.nbytes == pytest.approx(8.0 * cfg.n_rows)
    for s in cfg.stages:
        if s.kind == "allreduce":
            assert s.nbytes == 8.0


def test_unknown_scale_raises():
    with pytest.raises(KeyError):
        cg_emulation_config("galactic")
