"""Per-stage behaviour of the synthetic application's emulation kernel."""

import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.simulate import Simulator
from repro.smpi import MpiWorld, run_spmd
from repro.synthetic import StageSpec, run_stage
from repro.synthetic.monitoring import read_stats_json, write_stats_json


def run_stage_spmd(spec, p, fidelity="full", iterations=1, n_nodes=4, cores=2):
    def main(mpi):
        for it in range(iterations):
            yield from run_stage(mpi, mpi.comm_world, spec, it, fidelity)
        return mpi.now

    results, sim = run_spmd(main, p, n_nodes=n_nodes, cores_per_node=cores)
    return results, sim


# ----------------------------------------------------------------- compute
def test_compute_stage_scales_linearly_with_ranks():
    spec = StageSpec(kind="compute", work=0.8, jitter=0.0)
    t2 = run_stage_spmd(spec, 2)[1].now
    t8 = run_stage_spmd(spec, 8)[1].now
    assert t2 == pytest.approx(0.4)
    assert t8 == pytest.approx(0.1)


def test_compute_stage_constant_scale():
    spec = StageSpec(kind="compute", work=0.3, scale="constant", jitter=0.0)
    assert run_stage_spmd(spec, 2)[1].now == pytest.approx(0.3)
    assert run_stage_spmd(spec, 6)[1].now == pytest.approx(0.3)


def test_compute_jitter_perturbs_time():
    spec = StageSpec(kind="compute", work=0.5, jitter=0.1)
    t = run_stage_spmd(spec, 2)[1].now
    assert t != pytest.approx(0.25)
    assert 0.15 < t < 0.4


# ------------------------------------------------------------ collectives
@pytest.mark.parametrize("fidelity", ["full", "sketch"])
def test_allreduce_stage_runs_both_fidelities(fidelity):
    spec = StageSpec(kind="allreduce", nbytes=8.0)
    results, sim = run_stage_spmd(spec, 5, fidelity, iterations=3)
    assert sim.now > 0


@pytest.mark.parametrize("fidelity", ["full", "sketch"])
def test_allgatherv_stage_runs_both_fidelities(fidelity):
    spec = StageSpec(kind="allgatherv", nbytes=400_000.0)
    results, sim = run_stage_spmd(spec, 4, fidelity)
    assert sim.now > 0


def test_allgatherv_sketch_close_to_full():
    spec = StageSpec(kind="allgatherv", nbytes=2_000_000.0)
    t_full = run_stage_spmd(spec, 4, "full", iterations=4)[1].now
    t_sketch = run_stage_spmd(spec, 4, "sketch", iterations=4)[1].now
    assert 0.5 < t_sketch / t_full < 2.0


def test_single_rank_collectives_are_noops():
    for kind in ("allreduce", "allgatherv", "p2p"):
        spec = StageSpec(kind=kind, nbytes=1000.0)
        results, sim = run_stage_spmd(spec, 1)
        assert sim.now == 0.0


def test_p2p_stage_halo_exchange():
    spec = StageSpec(kind="p2p", nbytes=50_000.0)
    results, sim = run_stage_spmd(spec, 4, iterations=2)
    assert sim.now > 0


def test_unknown_fidelity_rejected():
    spec = StageSpec(kind="compute", work=0.1)

    def main(mpi):
        yield from run_stage(mpi, mpi.comm_world, spec, 0, "quantum")

    from repro.simulate import SimulationError

    with pytest.raises(SimulationError):
        run_spmd(main, 1)


# ------------------------------------------------------------- monitoring
def test_stats_json_roundtrip(tmp_path):
    from repro.malleability import RunStats

    stats = RunStats()
    stats.started_at = 0.0
    stats.finished_at = 2.5
    stats.iterations_by_group[0] = 10
    path = tmp_path / "stats.json"
    write_stats_json(stats, path)
    back = read_stats_json(path)
    assert back["app_time"] == 2.5
    assert back["total_iterations"] == 10
