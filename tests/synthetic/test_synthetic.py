"""Synthetic application: config round-trips, stages, full malleable runs."""

import pytest

from repro.cluster import ETHERNET_10G, INFINIBAND_EDR, Machine
from repro.malleability import ReconfigConfig, ReconfigRequest, RunStats
from repro.simulate import Simulator
from repro.smpi import MpiWorld, SpawnModel
from repro.synthetic import (
    SCALES,
    StageSpec,
    SyntheticApp,
    SyntheticConfig,
    cg_emulation_config,
    launch_synthetic,
    stats_to_dict,
)


def tiny_config(iterations=20, reconfs=(), fidelity="sketch", n_rows=4000):
    return SyntheticConfig(
        iterations=iterations,
        n_rows=n_rows,
        fidelity=fidelity,
        constant_bytes=40_000_000.0,
        variable_bytes=1_500_000.0,
        stages=(
            StageSpec(kind="compute", work=0.02, jitter=0.0),
            StageSpec(kind="allgatherv", nbytes=8.0 * n_rows),
            StageSpec(kind="allreduce", nbytes=8.0),
        ),
        reconfigurations=tuple(reconfs),
    )


def run_synthetic(config, reconfig_config, n_initial, fabric=ETHERNET_10G,
                  n_nodes=4, cores=2, seed=0):
    sim = Simulator()
    machine = Machine(sim, n_nodes, cores, fabric, seed=seed)
    world = MpiWorld(
        machine, spawn_model=SpawnModel(base=0.05, per_process=0.002, per_node=0.005)
    )
    stats = launch_synthetic(world, config, reconfig_config, n_initial)
    sim.run()
    return stats


# --------------------------------------------------------------- configfile
def test_config_toml_roundtrip():
    cfg = tiny_config(reconfs=[ReconfigRequest(10, 6)])
    text = cfg.to_toml()
    back = SyntheticConfig.from_toml(text)
    assert back == cfg


def test_config_from_file(tmp_path):
    cfg = tiny_config()
    path = tmp_path / "run.toml"
    path.write_text(cfg.to_toml())
    assert SyntheticConfig.from_toml(path) == cfg


def test_config_validation():
    with pytest.raises(ValueError):
        tiny_config(iterations=0)
    with pytest.raises(ValueError, match="beyond"):
        tiny_config(iterations=10, reconfs=[ReconfigRequest(10, 2)])
    with pytest.raises(ValueError, match="stage"):
        SyntheticConfig(
            iterations=5, n_rows=10, constant_bytes=0, variable_bytes=0, stages=()
        )
    with pytest.raises(ValueError):
        StageSpec(kind="quantum")
    with pytest.raises(ValueError):
        StageSpec(kind="compute", work=-1)


def test_async_fraction_of_cg_preset_matches_paper():
    cfg = cg_emulation_config("small")
    # Paper: 96.6 % of the 3.947 GB is asynchronously redistributable.
    assert cfg.async_fraction == pytest.approx(0.966, abs=0.01)


def test_cg_preset_paper_scale_bytes():
    cfg = cg_emulation_config("paper")
    assert cfg.total_bytes / 1e9 == pytest.approx(3.947, abs=0.08)
    assert cfg.iterations == 1000
    assert cfg.reconfigurations == ()
    assert SCALES["paper"].ladder == (2, 10, 20, 40, 80, 120, 160)
    # 42 ordered pairs in the paper's sweep.
    ladder = SCALES["paper"].ladder
    assert len([(a, b) for a in ladder for b in ladder if a != b]) == 42


# ------------------------------------------------------------------- stages
@pytest.mark.parametrize("fidelity", ["full", "sketch"])
def test_stage_fidelities_run_and_cost_similar(fidelity):
    cfg = tiny_config(iterations=8, fidelity=fidelity)
    stats = run_synthetic(cfg, ReconfigConfig.parse("merge-col-s"), n_initial=4)
    assert stats.total_iterations() == 8
    assert stats.app_time > 0


def test_sketch_and_full_iteration_times_are_close():
    """The sketch emulation must track the full collective within ~40 %."""
    times = {}
    for fidelity in ("full", "sketch"):
        cfg = tiny_config(iterations=10, fidelity=fidelity)
        stats = run_synthetic(cfg, ReconfigConfig.parse("merge-col-s"), n_initial=4)
        times[fidelity] = stats.app_time
    ratio = times["sketch"] / times["full"]
    assert 0.6 < ratio < 1.4, f"sketch/full app-time ratio {ratio:.2f}"


# ------------------------------------------------------------ full runs
@pytest.mark.parametrize("config_key", [
    "merge-col-s", "merge-col-a", "merge-col-t",
    "baseline-p2p-s", "baseline-p2p-a", "baseline-col-t",
])
@pytest.mark.parametrize("ns,nt", [(4, 2), (2, 6)])
def test_synthetic_reconfigurations(config_key, ns, nt):
    cfg = tiny_config(iterations=24, reconfs=[ReconfigRequest(8, nt)])
    stats = run_synthetic(cfg, ReconfigConfig.parse(config_key), n_initial=ns)
    assert stats.total_iterations() == 24
    rec = stats.last_reconfig
    assert rec.reconfiguration_time > 0
    assert rec.n_sources == ns and rec.n_targets == nt


def test_virtual_data_completeness_enforced():
    """on_handoff checks every virtual row arrived (session bug trap)."""
    cfg = tiny_config(iterations=16, reconfs=[ReconfigRequest(5, 3)])
    stats = run_synthetic(cfg, ReconfigConfig.parse("merge-p2p-a"), n_initial=5)
    assert stats.total_iterations() == 16


def test_infiniband_reconfigures_faster_than_ethernet():
    recs = {}
    for fabric in (ETHERNET_10G, INFINIBAND_EDR):
        cfg = tiny_config(iterations=16, reconfs=[ReconfigRequest(5, 2)])
        stats = run_synthetic(
            cfg, ReconfigConfig.parse("merge-col-s"), n_initial=4, fabric=fabric
        )
        recs[fabric.name] = stats.last_reconfig.reconfiguration_time
    assert recs["infiniband"] < recs["ethernet"]


def test_stats_export():
    cfg = tiny_config(iterations=10, reconfs=[ReconfigRequest(4, 2)])
    stats = run_synthetic(cfg, ReconfigConfig.parse("merge-col-s"), n_initial=4)
    d = stats_to_dict(stats)
    assert d["total_iterations"] == 10
    assert len(d["reconfigurations"]) == 1
    assert d["reconfigurations"][0]["reconfiguration_time"] > 0
    import json

    json.dumps(d)  # must be serialisable


def test_seeded_jitter_gives_distinct_reps():
    cfg = SyntheticConfig(
        iterations=10, n_rows=1000, constant_bytes=1e6, variable_bytes=1e5,
        stages=(StageSpec(kind="compute", work=0.1, jitter=0.05),),
        reconfigurations=(ReconfigRequest(4, 2),),
    )
    t = []
    for seed in (1, 2):
        stats = run_synthetic(cfg, ReconfigConfig.parse("merge-col-s"),
                              n_initial=4, seed=seed)
        t.append(stats.app_time)
    assert t[0] != t[1]
