"""Smoke-run every example script (the documented user journeys)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"
SRC = REPO / "src"


def run_example(name, *args, timeout=240):
    # The examples import `repro` from the source tree; the subprocess does
    # not inherit this test process's sys.path, so inject src/ explicitly.
    env = os.environ.copy()
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        f"{SRC}{os.pathsep}{existing}" if existing else str(SRC)
    )
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "CG converged" in out
    assert "received rows" in out


def test_malleable_cg():
    out = run_example("malleable_cg.py")
    assert "matches the sequential reference" in out


def test_malleable_cg_alternate_config():
    out = run_example("malleable_cg.py", "baseline-p2p-t")
    assert "Baseline P2PT" in out
    assert "matches the sequential reference" in out


def test_custom_application():
    out = run_example("custom_application.py")
    assert "Jacobi ran 40 sweeps" in out
    assert "TOML" in out or "parsed workload" in out


def test_trace_reconfiguration(tmp_path, monkeypatch):
    import os
    monkeypatch.chdir(tmp_path)  # the script writes its JSON to the cwd
    out = run_example("trace_reconfiguration.py")
    assert "iterations overlapped" in out
    assert (tmp_path / "reconfiguration_trace.json").exists()


def test_makespan_study():
    out = run_example("makespan_study.py", timeout=360)
    assert "makespan improvement" in out


@pytest.mark.slow
def test_synthetic_evaluation():
    out = run_example("synthetic_evaluation.py", "4", "2", timeout=400)
    assert "best on ethernet" in out
    assert "best on infiniband" in out
