"""Tracer lifecycle: detach restores hooks, exports match the pinned
Perfetto schema snippet, and filtering composes with the obs replay."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.obs import MetricsRegistry
from repro.simulate import Simulator
from repro.smpi import MpiWorld
from repro.trace import Tracer

SCHEMA = json.loads(
    (Path(__file__).parent / "perfetto_schema.json").read_text()
)


def build_stack():
    sim = Simulator()
    machine = Machine(sim, 2, 1, ETHERNET_10G)
    world = MpiWorld(machine)
    return sim, machine, world


def run_pingpong(sim, world):
    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.compute(0.005)
            yield from mpi.send(np.zeros(50_000), dest=1, label="payload")
            return None
        yield from mpi.recv(source=0)
        return None

    world.launch(main, slots=[0, 1])
    sim.run()


def test_detach_restores_machine_hooks():
    sim, machine, world = build_stack()
    net_start = machine.network.start_flow
    submits = [n.submit for n in machine.nodes]
    tracer = Tracer().attach(machine)
    assert machine.network.start_flow != net_start
    tracer.detach()
    assert machine.network.start_flow == net_start
    for node, sub in zip(machine.nodes, submits):
        assert node.submit == sub
    # events recorded before detach are kept; a detached tracer records
    # nothing further
    run_pingpong(sim, world)
    assert tracer.events == []


def test_detach_requires_attach():
    tracer = Tracer()
    with pytest.raises(RuntimeError, match="not attached"):
        tracer.detach()


def test_attach_detach_reattach_cycle():
    sim, machine, world = build_stack()
    tracer = Tracer().attach(machine)
    tracer.detach()
    tracer.attach(machine)  # legal again after detach
    run_pingpong(sim, world)
    tracer.detach()
    assert tracer.events


def test_double_attach_rejected():
    _, machine, _ = build_stack()
    tracer = Tracer().attach(machine)
    with pytest.raises(RuntimeError, match="already attached"):
        tracer.attach(machine)


def test_chrome_trace_matches_pinned_schema():
    sim, machine, world = build_stack()
    tracer = Tracer().attach(machine)
    run_pingpong(sim, world)
    tracer.detach()
    tracer.mark("app", "reconfig", 0.0, 0.001)
    doc = json.loads(tracer.to_chrome_trace())
    for key in SCHEMA["top_level"]:
        assert key in doc
    events = doc["traceEvents"]
    assert events
    for e in events:
        assert e["ph"] in SCHEMA["event_phases"]
        if e["ph"] == "X":
            for field in SCHEMA["complete_event_required"]:
                assert field in e, f"complete event missing {field!r}"
            assert e["cat"] in SCHEMA["categories"]
            assert e["ts"] >= 0 and e["dur"] >= 0
        else:
            for field in SCHEMA["metadata_event_required"]:
                assert field in e, f"metadata event missing {field!r}"
            assert e["name"] in SCHEMA["metadata_names"]
    # every lane referenced by a complete event has a process_name record
    named = {e["pid"] for e in events if e["ph"] == "M"}
    used = {e["pid"] for e in events if e["ph"] == "X"}
    assert used <= named


def test_label_filter_suppresses_other_events():
    sim, machine, world = build_stack()
    tracer = Tracer(label_filter="data:").attach(machine)
    run_pingpong(sim, world)
    tracer.detach()
    assert tracer.events  # the rendezvous payload flow matched
    assert all("data:" in e.label for e in tracer.events)


def test_obs_spans_replay_into_tracer_lanes():
    tracer = Tracer()
    reg = MetricsRegistry()
    reg.timer("redist.phase_seconds", method="col", phase="values").record(
        0.0, 0.25, "redist:values"
    )
    assert reg.feed_tracer(tracer) == 1
    assert tracer.lanes() == [
        "obs:redist.phase_seconds{method=col,phase=values}"
    ]
    doc = json.loads(tracer.to_chrome_trace())
    x = next(e for e in doc["traceEvents"] if e["ph"] == "X")
    assert x["cat"] == "mark" and x["dur"] == pytest.approx(0.25e6)
