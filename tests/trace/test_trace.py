"""Tracer: recording, filtering, export, and rendering."""

import json

import numpy as np
import pytest

from repro.cluster import ETHERNET_10G, Machine
from repro.simulate import Simulator
from repro.smpi import MpiWorld
from repro.trace import TraceEvent, Tracer, ascii_timeline


def traced_run(label_filter=None):
    sim = Simulator()
    machine = Machine(sim, 2, 1, ETHERNET_10G)
    tracer = Tracer(label_filter=label_filter).attach(machine)
    world = MpiWorld(machine)

    def main(mpi):
        if mpi.rank == 0:
            yield from mpi.compute(0.01)
            yield from mpi.send(np.zeros(50_000), dest=1, label="payload")
            return None
        yield from mpi.recv(source=0)
        return None

    world.launch(main, slots=[0, 1])
    sim.run()
    return tracer, sim


def test_tracer_records_flows_and_cpu():
    tracer, sim = traced_run()
    cats = {e.category for e in tracer.events}
    assert "flow" in cats and "cpu" in cats
    lanes = tracer.lanes()
    assert any(lane.startswith("net:") for lane in lanes)
    assert any(lane.startswith("cpu:") for lane in lanes)
    # Every event fits inside the run.
    for e in tracer.events:
        assert 0 <= e.t0 <= e.t1 <= sim.now + 1e-9


def test_tracer_label_filter():
    tracer, _ = traced_run(label_filter="data:")
    assert tracer.events  # the rendezvous payload flow matched
    assert all("data:" in e.label for e in tracer.events)


def test_tracer_marks_and_queries():
    tracer = Tracer()
    tracer.mark("app", "checkpoint", 1.0)
    tracer.mark("app", "reconfig", 1.0, 2.5)
    assert tracer.total_time(lane="app", category="mark") == pytest.approx(1.5)
    assert tracer.between(0.5, 1.2)
    assert not tracer.between(5.0, 6.0)


def test_double_attach_rejected():
    sim = Simulator()
    machine = Machine(sim, 1, 1, ETHERNET_10G)
    tracer = Tracer().attach(machine)
    with pytest.raises(RuntimeError):
        tracer.attach(machine)


def test_chrome_trace_export():
    tracer, _ = traced_run()
    doc = json.loads(tracer.to_chrome_trace())
    events = doc["traceEvents"]
    assert any(e.get("ph") == "X" for e in events)
    assert any(e.get("ph") == "M" for e in events)  # lane names
    x = next(e for e in events if e.get("ph") == "X")
    assert x["ts"] >= 0 and x["dur"] >= 0


def test_ascii_timeline_renders():
    tracer, sim = traced_run()
    text = ascii_timeline(tracer.events, width=60)
    assert "legend:" in text
    assert "#" in text or "=" in text
    assert "cpu:" in text and "net:" in text


def test_ascii_timeline_empty_and_windowed():
    assert "(no trace events)" in ascii_timeline([])
    events = [TraceEvent(0.0, 1.0, "a", "cpu", "x")]
    text = ascii_timeline(events, width=20, t0=0.0, t1=2.0)
    assert "a" in text


def test_ascii_timeline_lane_cap():
    events = [
        TraceEvent(0.0, 1.0, f"lane{i:02d}", "cpu", "x") for i in range(30)
    ]
    text = ascii_timeline(events, max_lanes=5)
    assert "more lane(s) hidden" in text
